//! Sparse matrix-vector multiply (ELLPACK format) — an irregular-access
//! workload in the family the paper's introduction motivates.
//!
//! Every row holds exactly `nnz_per_row` entries whose column indices are
//! drawn from a splitmix64 hash, so the gather of `x[col]` is scattered
//! across memory (poor coalescing, heavy memory-data stalls) while control
//! flow stays warp-uniform. Arithmetic wraps, and the host reference in
//! [`expected_y`] mirrors the kernel bit-for-bit.

use crate::hash::splitmix64;
use gsi_isa::{Operand, Program, ProgramBuilder, Reg, WARP_LANES};
use gsi_sim::{KernelRun, LaunchSpec, SimError, Simulator};

/// Workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvConfig {
    /// Matrix rows (one thread per row).
    pub rows: u64,
    /// Nonzeros per row (uniform: ELLPACK).
    pub nnz_per_row: u64,
    /// Warps per thread block.
    pub warps_per_block: usize,
    /// Seed fixing the sparsity pattern and values.
    pub seed: u64,
}

impl SpmvConfig {
    /// A medium irregular instance.
    pub fn medium() -> Self {
        SpmvConfig { rows: 4096, nnz_per_row: 8, warps_per_block: 4, seed: 0xC0FFEE }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        SpmvConfig { rows: 512, nnz_per_row: 4, warps_per_block: 2, seed: 0xC0FFEE }
    }

    /// Threads (rows) per block.
    pub fn block_rows(&self) -> u64 {
        (self.warps_per_block * WARP_LANES) as u64
    }

    /// Blocks in the grid.
    pub fn grid_blocks(&self) -> u64 {
        self.rows.div_ceil(self.block_rows())
    }

    fn validate(&self) {
        assert!(self.rows > 0 && self.nnz_per_row > 0, "empty matrix");
        assert_eq!(self.rows % self.block_rows(), 0, "rows must fill whole blocks");
    }
}

/// Memory layout: `x`, `y`, then the column-index and value planes
/// (ELLPACK: entry `k` of row `r` lives at `plane_base + (k*rows + r) * 8`).
#[derive(Debug, Clone, Copy)]
pub struct SpmvLayout {
    /// Input vector base.
    pub x: u64,
    /// Output vector base.
    pub y: u64,
    /// Column-index plane base.
    pub cols: u64,
    /// Value plane base.
    pub vals: u64,
}

impl SpmvLayout {
    /// Lay out the structures for `cfg`.
    pub fn new(cfg: &SpmvConfig) -> Self {
        let base = 0x80_0000u64;
        let vec_bytes = cfg.rows * 8;
        let plane_bytes = cfg.rows * cfg.nnz_per_row * 8;
        SpmvLayout {
            x: base,
            y: base + vec_bytes,
            cols: base + 2 * vec_bytes,
            vals: base + 2 * vec_bytes + plane_bytes,
        }
    }
}

/// The column index of entry `k` in row `r`.
pub fn col_of(cfg: &SpmvConfig, r: u64, k: u64) -> u64 {
    splitmix64(cfg.seed ^ (r * 131 + k)) % cfg.rows
}

/// The value of entry `k` in row `r`.
pub fn val_of(cfg: &SpmvConfig, r: u64, k: u64) -> u64 {
    splitmix64(cfg.seed.wrapping_add(0x9E37) ^ (r * 131 + k)) | 1
}

/// The input vector.
pub fn x_of(cfg: &SpmvConfig, i: u64) -> u64 {
    splitmix64(cfg.seed ^ (i << 32))
}

/// Host reference: `y[r] = sum_k vals[r,k] * x[cols[r,k]]` (wrapping).
pub fn expected_y(cfg: &SpmvConfig, r: u64) -> u64 {
    let mut acc = 0u64;
    for k in 0..cfg.nnz_per_row {
        acc = acc.wrapping_add(val_of(cfg, r, k).wrapping_mul(x_of(cfg, col_of(cfg, r, k))));
    }
    acc
}

// Registers: r0 = row (per lane), r1 = x base, r2 = y base, r3 = cols base,
// r4 = vals base, r5 = rows count.
const R_ROW: Reg = Reg(0);
const R_X: Reg = Reg(1);
const R_Y: Reg = Reg(2);
const R_COLS: Reg = Reg(3);
const R_VALS: Reg = Reg(4);
const R_K: Reg = Reg(6);
const R_ACC: Reg = Reg(7);
const R_OFF: Reg = Reg(8); // plane offset of (k, row), in bytes
const R_COL: Reg = Reg(9);
const R_VAL: Reg = Reg(10);
const R_T: Reg = Reg(11);
const R_XV: Reg = Reg(12);
const R_STRIDE: Reg = Reg(13); // rows * 8 (plane stride per k)

/// Build the SpMV kernel.
pub fn build_program(cfg: &SpmvConfig) -> Program {
    cfg.validate();
    let mut b = ProgramBuilder::new("spmv-ell");
    b.ldi(R_ACC, 0);
    b.ldi(R_K, cfg.nnz_per_row);
    b.ldi(R_STRIDE, cfg.rows * 8);
    // off = row * 8 (entry 0 of this row); advances by rows*8 per k.
    b.shl(R_OFF, R_ROW, Operand::Imm(3));
    let top = b.here();
    // col = cols[off]; gather xv = x[col * 8]; val = vals[off]
    b.add(R_T, R_COLS, R_OFF);
    b.ld_global(R_COL, R_T, 0);
    b.shl(R_COL, R_COL, Operand::Imm(3));
    b.add(R_COL, R_COL, R_X);
    b.ld_global(R_XV, R_COL, 0);
    b.add(R_T, R_VALS, R_OFF);
    b.ld_global(R_VAL, R_T, 0);
    // acc += val * xv
    b.mul(R_VAL, R_VAL, R_XV);
    b.add(R_ACC, R_ACC, R_VAL);
    // next entry
    b.add(R_OFF, R_OFF, R_STRIDE);
    b.subi(R_K, R_K, 1);
    b.bra_nz(R_K, top);
    // y[row] = acc
    b.shl(R_T, R_ROW, Operand::Imm(3));
    b.add(R_T, R_T, R_Y);
    b.st_global(R_ACC, R_T, 0);
    b.exit();
    b.build().expect("spmv assembles")
}

/// Initialize `x`, the column plane, and the value plane.
pub fn init_memory(sim: &mut Simulator, cfg: &SpmvConfig, lay: &SpmvLayout) {
    let g = sim.gmem_mut();
    for i in 0..cfg.rows {
        g.write_word(lay.x + i * 8, x_of(cfg, i));
    }
    for k in 0..cfg.nnz_per_row {
        for r in 0..cfg.rows {
            let off = (k * cfg.rows + r) * 8;
            g.write_word(lay.cols + off, col_of(cfg, r, k));
            g.write_word(lay.vals + off, val_of(cfg, r, k));
        }
    }
}

/// Build the launch.
pub fn launch_spec(cfg: &SpmvConfig, lay: SpmvLayout) -> LaunchSpec {
    let program = build_program(cfg);
    let block_rows = cfg.block_rows();
    LaunchSpec::new(program, cfg.grid_blocks(), cfg.warps_per_block).with_init(
        move |w, block, warp, _ctx| {
            w.set_per_lane(R_ROW.0, move |lane| {
                block * block_rows + (warp * WARP_LANES + lane) as u64
            });
            w.set_uniform(R_X.0, lay.x);
            w.set_uniform(R_Y.0, lay.y);
            w.set_uniform(R_COLS.0, lay.cols);
            w.set_uniform(R_VALS.0, lay.vals);
        },
    )
}

/// The outcome of a verified SpMV run.
#[derive(Debug, Clone)]
pub struct SpmvRun {
    /// The kernel execution record.
    pub run: KernelRun,
    /// Rows verified against the host reference.
    pub verified_rows: u64,
}

/// Run SpMV on `sim` and verify every output row.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if any output row disagrees with the host reference.
pub fn run(sim: &mut Simulator, cfg: &SpmvConfig) -> Result<SpmvRun, SimError> {
    let lay = SpmvLayout::new(cfg);
    init_memory(sim, cfg, &lay);
    let spec = launch_spec(cfg, lay);
    let run = sim.run_kernel(&spec)?;
    for r in 0..cfg.rows {
        assert_eq!(sim.gmem().read_word(lay.y + r * 8), expected_y(cfg, r), "row {r} wrong");
    }
    Ok(SpmvRun { run, verified_rows: cfg.rows })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_core::{MemDataCause, StallKind};
    use gsi_sim::SystemConfig;

    #[test]
    fn reference_is_deterministic() {
        let cfg = SpmvConfig::small();
        assert_eq!(expected_y(&cfg, 0), expected_y(&cfg, 0));
        assert!(col_of(&cfg, 3, 1) < cfg.rows);
        assert_ne!(val_of(&cfg, 0, 0), 0, "values are odd, never zero");
    }

    #[test]
    fn runs_and_verifies() {
        let cfg = SpmvConfig::small();
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = run(&mut sim, &cfg).unwrap();
        assert_eq!(out.verified_rows, cfg.rows);
    }

    #[test]
    fn irregular_gather_is_memory_bound() {
        let cfg = SpmvConfig::small();
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = run(&mut sim, &cfg).unwrap();
        let b = &out.run.breakdown;
        // The x-gather misses everywhere: memory data stalls dominate and
        // most of them are serviced at L2 or main memory.
        assert!(b.cycles(StallKind::MemoryData) > b.cycles(StallKind::ComputeData), "{b:?}");
        assert!(
            b.mem_data_cycles(MemDataCause::MainMemory) + b.mem_data_cycles(MemDataCause::L2) > 0
        );
    }

    #[test]
    fn more_nnz_costs_more_cycles() {
        let small = SpmvConfig { nnz_per_row: 2, ..SpmvConfig::small() };
        let big = SpmvConfig { nnz_per_row: 8, ..SpmvConfig::small() };
        let mut s1 = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let mut s2 = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let a = run(&mut s1, &small).unwrap();
        let b = run(&mut s2, &big).unwrap();
        assert!(b.run.cycles > a.run.cycles);
    }
}
