//! # gsi-workloads — the paper's case-study workloads
//!
//! The GSI paper demonstrates its stall-attribution methodology on three
//! workloads, all re-implemented here against the `gsi-isa` virtual ISA:
//!
//! * [`uts`] — **Unbalanced Tree Search**: a task-queue algorithm
//!   processing a tree of unknown shape. A single global queue protected by
//!   one lock makes it synchronization-dominated (case study 1, Figure 6.1).
//! * UTSD (via [`uts::Variant::Decentralized`]) — UTS
//!   with per-SM local task queues that overflow into the global queue,
//!   drastically reducing lock contention and exposing the memory-system
//!   differences between GPU coherence and DeNovo (Figure 6.2).
//! * [`implicit`] — the **implicit microbenchmark** of the stash paper:
//!   a streaming array transform run on three local-memory organizations —
//!   baseline scratchpad, scratchpad+DMA, and stash (Figures 6.3 and 6.4).
//!
//! Beyond the paper's two case studies, four more kernels exercise the
//! stall classes from different angles (the "broader class of parallel
//! applications" the paper's introduction motivates):
//!
//! * [`spmv`] — ELLPACK sparse matrix-vector multiply: irregular gathers,
//!   memory-data-stall bound.
//! * [`histogram`] — atomic bin updates: L2 atomics contention (and
//!   ownership migration under owned atomics).
//! * [`stencil`] — a tiled 3-point stencil: the workload scratchpads are
//!   genuinely good at, in tiled and global variants.
//! * [`reduction`] — block tree reduction: barriers, predicated lockstep
//!   execution, and a final atomics hot spot.
//! * [`bfs`] — level-synchronous breadth-first search: the irregular graph
//!   traversal family the paper's introduction motivates, with one kernel
//!   launch per level (multi-kernel coherence) and CAS-claimed vertices.
//! * [`gemm`] — tiled dense matrix multiply: the canonical scratchpad
//!   showcase (tile reuse, per-step barriers), with an untiled comparison
//!   variant.
//!
//! Every workload initializes global memory, builds its kernel, runs it on
//! a [`gsi_sim::Simulator`], and *verifies the functional result* against a
//! host-side reference, so the timing experiments can never silently
//! compute the wrong answer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod gemm;
pub mod hash;
pub mod histogram;
pub mod implicit;
pub mod reduction;
pub mod spmv;
pub mod stencil;
pub mod uts;
