//! The splitmix64 hash used to grow deterministic unbalanced trees.
//!
//! The real UTS benchmark derives each node's child count from a SHA-1 hash
//! of its path; we use splitmix64 the same way. The host-side
//! [`splitmix64`] and the emitted instruction sequence
//! ([`emit_splitmix`]) compute bit-identical results, which is what lets the
//! workloads verify their simulated output exactly.

use gsi_isa::{Operand, ProgramBuilder, Reg};

const C1: u64 = 0x9E37_79B9_7F4A_7C15;
const C2: u64 = 0xBF58_476D_1CE4_E5B9;
const C3: u64 = 0x94D0_49BB_1331_11EB;

/// The splitmix64 finalizer.
///
/// ```
/// use gsi_workloads::hash::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(C1);
    z = (z ^ (z >> 30)).wrapping_mul(C2);
    z = (z ^ (z >> 27)).wrapping_mul(C3);
    z ^ (z >> 31)
}

/// Emit `dst = splitmix64(src)` (9 instructions, two of them on the SFU
/// multiplier). `tmp` is clobbered; `dst` may equal `src` but not `tmp`.
pub fn emit_splitmix(b: &mut ProgramBuilder, dst: Reg, src: Reg, tmp: Reg) {
    assert_ne!(dst, tmp, "dst and tmp must differ");
    b.add(dst, src, Operand::Imm(C1 as i64));
    b.shr(tmp, dst, Operand::Imm(30));
    b.xor(dst, dst, tmp);
    b.mul(dst, dst, Operand::Imm(C2 as i64));
    b.shr(tmp, dst, Operand::Imm(27));
    b.xor(dst, dst, tmp);
    b.mul(dst, dst, Operand::Imm(C3 as i64));
    b.shr(tmp, dst, Operand::Imm(31));
    b.xor(dst, dst, tmp);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_isa::{eval_alu, Instr};

    /// Interpret a straight-line ALU program on a single value, mirroring
    /// the SM's functional semantics.
    fn interpret(prog: &[Instr], mut regs: Vec<u64>) -> Vec<u64> {
        for i in prog {
            if let Instr::Alu { op, dst, a, b } = i {
                let val = |o: &gsi_isa::Operand| match o {
                    gsi_isa::Operand::Reg(r) => regs[r.0 as usize],
                    gsi_isa::Operand::Imm(v) => *v as u64,
                };
                regs[dst.0 as usize] = eval_alu(*op, val(a), val(b));
            } else {
                panic!("non-ALU instruction in splitmix sequence");
            }
        }
        regs
    }

    #[test]
    fn emitted_sequence_matches_host_function() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX, 1 << 55] {
            let mut b = ProgramBuilder::new("h");
            emit_splitmix(&mut b, Reg(1), Reg(0), Reg(2));
            b.exit();
            let p = b.build().unwrap();
            let instrs: Vec<Instr> = p.instrs()[..p.len() - 1].to_vec();
            let regs = interpret(&instrs, vec![seed, 0, 0]);
            assert_eq!(regs[1], splitmix64(seed), "seed {seed:#x}");
        }
    }

    #[test]
    fn hash_distributes() {
        // Rough avalanche check: low bits of consecutive seeds differ.
        let mut seen = std::collections::HashSet::new();
        for s in 0..1000u64 {
            seen.insert(splitmix64(s) % 1000);
        }
        assert!(seen.len() > 600, "splitmix64 should spread residues");
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn aliased_tmp_panics() {
        let mut b = ProgramBuilder::new("h");
        emit_splitmix(&mut b, Reg(1), Reg(0), Reg(1));
    }
}
