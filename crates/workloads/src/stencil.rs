//! A 1-D three-point stencil — the classic workload scratchpads are *good*
//! at (each input element is reused three times), complementing the
//! implicit microbenchmark where the scratchpad's benefit is marginal.
//!
//! Each thread block tiles its chunk (plus a two-element halo) into the
//! scratchpad, synchronizes, and computes
//! `out[i] = in[i-1] + in[i] + in[i+1]` (wrapping) from the local copy.
//! The global variant skips the tile and reads everything from the memory
//! hierarchy; comparing the two breakdowns shows the stall classes the
//! scratchpad removes.

use crate::hash::splitmix64;
use gsi_isa::{Operand, Program, ProgramBuilder, Reg, WARP_LANES};
use gsi_sim::{KernelRun, LaunchSpec, SimError, Simulator};

/// Whether the kernel tiles through the scratchpad or reads globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilVariant {
    /// Tile into the scratchpad, barrier, compute from the tile.
    Tiled,
    /// Read the three inputs straight from global memory.
    Global,
}

/// Workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilConfig {
    /// Interior elements computed (the array has one halo cell each side).
    pub elems: u64,
    /// Warps per block; the chunk is `warps * 32` elements.
    pub warps_per_block: usize,
    /// Variant.
    pub variant: StencilVariant,
    /// Seed fixing the input.
    pub seed: u64,
}

impl StencilConfig {
    /// A medium instance.
    pub fn medium(variant: StencilVariant) -> Self {
        StencilConfig { elems: 8192, warps_per_block: 4, variant, seed: 0x57E4C11 }
    }

    /// A small instance for tests.
    pub fn small(variant: StencilVariant) -> Self {
        StencilConfig { elems: 1024, warps_per_block: 2, variant, seed: 0x57E4C11 }
    }

    /// Elements per block.
    pub fn chunk_elems(&self) -> u64 {
        (self.warps_per_block * WARP_LANES) as u64
    }

    /// Blocks in the grid.
    pub fn grid_blocks(&self) -> u64 {
        self.elems.div_ceil(self.chunk_elems())
    }

    fn validate(&self) {
        assert!(self.elems > 0, "empty stencil");
        assert_eq!(self.elems % self.chunk_elems(), 0, "whole blocks only");
    }
}

/// Memory layout: input (with halo cells at both ends) and output.
#[derive(Debug, Clone, Copy)]
pub struct StencilLayout {
    /// Input base: element `i` lives at `input + (i + 1) * 8` so that the
    /// `i = 0` stencil can read a halo cell at `input`.
    pub input: u64,
    /// Output base (interior elements only).
    pub output: u64,
}

impl StencilLayout {
    /// Lay out the arrays for `cfg`.
    pub fn new(cfg: &StencilConfig) -> Self {
        let base = 0xC0_0000u64;
        StencilLayout { input: base, output: base + (cfg.elems + 2) * 8 }
    }
}

/// Input element `i` of the padded array (`0..elems+2`).
pub fn input_of(cfg: &StencilConfig, i: u64) -> u64 {
    splitmix64(cfg.seed ^ i)
}

/// Host reference for interior output `i` (`0..elems`).
pub fn expected_out(cfg: &StencilConfig, i: u64) -> u64 {
    input_of(cfg, i).wrapping_add(input_of(cfg, i + 1)).wrapping_add(input_of(cfg, i + 2))
}

// Registers: r0 = tid in block (per lane), r1 = block's padded-input base,
// r2 = block's output base, r3 = slot scratchpad base (uniform).
const R_TID: Reg = Reg(0);
const R_IN: Reg = Reg(1);
const R_OUT: Reg = Reg(2);
const R_LBASE: Reg = Reg(3);
const R_GA: Reg = Reg(4);
const R_LA: Reg = Reg(5);
const R_V: Reg = Reg(6);
const R_ACC: Reg = Reg(7);
const R_T: Reg = Reg(8);

/// Build the stencil kernel.
pub fn build_program(cfg: &StencilConfig) -> Program {
    cfg.validate();
    let chunk = cfg.chunk_elems();
    match cfg.variant {
        StencilVariant::Tiled => {
            let mut b = ProgramBuilder::new("stencil-tiled");
            // Tile chunk + 2 halo words: each thread copies element tid,
            // and threads 0/1 additionally copy the two tail halo words.
            b.shl(R_GA, R_TID, Operand::Imm(3));
            b.add(R_GA, R_GA, R_IN);
            b.shl(R_LA, R_TID, Operand::Imm(3));
            b.add(R_LA, R_LA, R_LBASE);
            b.ld_global(R_V, R_GA, 0);
            b.st_local(R_V, R_LA, 0);
            // Threads with tid < 2 copy the halo cells chunk and chunk+1.
            // All lanes execute the loads; the Sel keeps the halo address
            // for lanes 0..2 and a dummy (their own) address otherwise, and
            // every lane stores to its chosen local slot, so lanes >= 2
            // redundantly rewrite their own element. No divergence needed.
            b.sltu(R_T, R_TID, Operand::Imm(2));
            let halo = (chunk * 8) as i64;
            b.sel(R_ACC, R_T, Operand::Imm(halo), Operand::Imm(0));
            // global halo addr = in + tid*8 + (chosen offset)
            b.add(R_GA, R_GA, R_ACC);
            b.add(R_LA, R_LA, R_ACC);
            b.ld_global(R_V, R_GA, 0);
            b.st_local(R_V, R_LA, 0);
            b.bar();
            // out[tid] = tile[tid] + tile[tid+1] + tile[tid+2]
            b.shl(R_LA, R_TID, Operand::Imm(3));
            b.add(R_LA, R_LA, R_LBASE);
            b.ld_local(R_ACC, R_LA, 0);
            b.ld_local(R_V, R_LA, 8);
            b.add(R_ACC, R_ACC, R_V);
            b.ld_local(R_V, R_LA, 16);
            b.add(R_ACC, R_ACC, R_V);
            b.shl(R_GA, R_TID, Operand::Imm(3));
            b.add(R_GA, R_GA, R_OUT);
            b.st_global(R_ACC, R_GA, 0);
            b.exit();
            b.build().expect("tiled stencil assembles")
        }
        StencilVariant::Global => {
            let mut b = ProgramBuilder::new("stencil-global");
            b.shl(R_GA, R_TID, Operand::Imm(3));
            b.add(R_GA, R_GA, R_IN);
            b.ld_global(R_ACC, R_GA, 0);
            b.ld_global(R_V, R_GA, 8);
            b.add(R_ACC, R_ACC, R_V);
            b.ld_global(R_V, R_GA, 16);
            b.add(R_ACC, R_ACC, R_V);
            b.shl(R_GA, R_TID, Operand::Imm(3));
            b.add(R_GA, R_GA, R_OUT);
            b.st_global(R_ACC, R_GA, 0);
            b.exit();
            b.build().expect("global stencil assembles")
        }
    }
}

/// Initialize the padded input.
pub fn init_memory(sim: &mut Simulator, cfg: &StencilConfig, lay: &StencilLayout) {
    let g = sim.gmem_mut();
    for i in 0..cfg.elems + 2 {
        g.write_word(lay.input + i * 8, input_of(cfg, i));
    }
}

/// Build the launch.
pub fn launch_spec(cfg: &StencilConfig, lay: StencilLayout) -> LaunchSpec {
    let program = build_program(cfg);
    let chunk = cfg.chunk_elems();
    // The tile needs chunk + 2 words; round the slot stride up to a line.
    let slot_bytes = ((chunk + 2) * 8).next_multiple_of(64);
    LaunchSpec::new(program, cfg.grid_blocks(), cfg.warps_per_block).with_init(
        move |w, block, warp, ctx| {
            w.set_per_lane(R_TID.0, move |lane| (warp * WARP_LANES + lane) as u64);
            // The block's stencil window starts at padded index block*chunk.
            w.set_uniform(R_IN.0, lay.input + block * chunk * 8);
            w.set_uniform(R_OUT.0, lay.output + block * chunk * 8);
            w.set_uniform(R_LBASE.0, ctx.slot as u64 * slot_bytes);
        },
    )
}

/// The outcome of a verified stencil run.
#[derive(Debug, Clone)]
pub struct StencilRun {
    /// The kernel execution record.
    pub run: KernelRun,
    /// Elements verified.
    pub verified_elems: u64,
}

/// Run the stencil on `sim` and verify every output element.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics on a wrong output element, or if the tiled variant's slots would
/// overflow the scratchpad.
pub fn run(sim: &mut Simulator, cfg: &StencilConfig) -> Result<StencilRun, SimError> {
    if cfg.variant == StencilVariant::Tiled {
        let slot_bytes = ((cfg.chunk_elems() + 2) * 8).next_multiple_of(64);
        assert!(
            slot_bytes * sim.config().sm.max_blocks as u64 <= sim.config().mem.scratch_bytes,
            "tiles of resident blocks must fit in the scratchpad"
        );
    }
    let lay = StencilLayout::new(cfg);
    init_memory(sim, cfg, &lay);
    let spec = launch_spec(cfg, lay);
    let run = sim.run_kernel(&spec)?;
    for i in 0..cfg.elems {
        assert_eq!(
            sim.gmem().read_word(lay.output + i * 8),
            expected_out(cfg, i),
            "output {i} wrong ({:?})",
            cfg.variant
        );
    }
    Ok(StencilRun { run, verified_elems: cfg.elems })
}

/// Host reference for `steps` applications of the stencil: buffers are
/// padded, halo cells stay at their initial values, interiors update.
pub fn expected_after_steps(cfg: &StencilConfig, steps: u64) -> Vec<u64> {
    let n = cfg.elems as usize;
    let mut cur: Vec<u64> = (0..n + 2).map(|i| input_of(cfg, i as u64)).collect();
    let mut next = cur.clone();
    for _ in 0..steps {
        for i in 0..n {
            next[i + 1] = cur[i].wrapping_add(cur[i + 1]).wrapping_add(cur[i + 2]);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur[1..=n].to_vec()
}

/// Run `steps` stencil time steps as separate kernel launches with double
/// buffering — each launch is an acquire (the L1s self-invalidate) and each
/// completion a release (the store buffers flush), so cross-kernel
/// coherence is exercised `steps` times.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if the final interior disagrees with the host reference.
pub fn run_time_steps(
    sim: &mut Simulator,
    cfg: &StencilConfig,
    steps: u64,
) -> Result<Vec<KernelRun>, SimError> {
    assert!(steps >= 1, "at least one step");
    let lay = StencilLayout::new(cfg);
    // Two padded buffers: A at the layout's input, B after the output slot.
    let _padded_bytes = (cfg.elems + 2) * 8; // kept for layout clarity
    let buf_a = lay.input;
    let buf_b = lay.output + cfg.elems * 8;
    {
        let g = sim.gmem_mut();
        for i in 0..cfg.elems + 2 {
            let v = input_of(cfg, i);
            g.write_word(buf_a + i * 8, v);
            g.write_word(buf_b + i * 8, v); // halos must persist in both
        }
    }
    let program = build_program(cfg);
    let chunk = cfg.chunk_elems();
    let slot_bytes = ((chunk + 2) * 8).next_multiple_of(64);
    let mut runs = Vec::new();
    for step in 0..steps {
        let (src, dst) = if step % 2 == 0 { (buf_a, buf_b) } else { (buf_b, buf_a) };
        let spec = LaunchSpec::new(program.clone(), cfg.grid_blocks(), cfg.warps_per_block)
            .with_init(move |w, block, warp, ctx| {
                w.set_per_lane(R_TID.0, move |lane| (warp * WARP_LANES + lane) as u64);
                w.set_uniform(R_IN.0, src + block * chunk * 8);
                // The kernel writes an un-padded "output" view; point it at
                // the destination buffer's interior.
                w.set_uniform(R_OUT.0, dst + 8 + block * chunk * 8);
                w.set_uniform(R_LBASE.0, ctx.slot as u64 * slot_bytes);
            });
        runs.push(sim.run_kernel(&spec)?);
    }
    let final_buf = if steps.is_multiple_of(2) { buf_a } else { buf_b };
    let want = expected_after_steps(cfg, steps);
    for i in 0..cfg.elems {
        assert_eq!(
            sim.gmem().read_word(final_buf + (i + 1) * 8),
            want[i as usize],
            "element {i} wrong after {steps} steps"
        );
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_core::StallKind;
    use gsi_sim::SystemConfig;

    fn sim() -> Simulator {
        Simulator::new(SystemConfig::paper().with_gpu_cores(2))
    }

    #[test]
    fn both_variants_run_and_verify() {
        for variant in [StencilVariant::Tiled, StencilVariant::Global] {
            let cfg = StencilConfig::small(variant);
            let out = run(&mut sim(), &cfg).unwrap();
            assert_eq!(out.verified_elems, cfg.elems, "{variant:?}");
        }
    }

    #[test]
    fn variants_agree_on_the_answer() {
        // Both verified against the same reference; spot-check equality too.
        let a = StencilConfig::small(StencilVariant::Tiled);
        let b = StencilConfig::small(StencilVariant::Global);
        let la = StencilLayout::new(&a);
        let mut s1 = sim();
        let mut s2 = sim();
        run(&mut s1, &a).unwrap();
        run(&mut s2, &b).unwrap();
        for i in (0..a.elems).step_by(97) {
            assert_eq!(
                s1.gmem().read_word(la.output + i * 8),
                s2.gmem().read_word(la.output + i * 8)
            );
        }
    }

    #[test]
    fn time_stepping_verifies_across_kernel_boundaries() {
        for variant in [StencilVariant::Tiled, StencilVariant::Global] {
            let cfg = StencilConfig::small(variant);
            let runs = run_time_steps(&mut sim(), &cfg, 3).unwrap();
            assert_eq!(runs.len(), 3, "{variant:?}");
        }
    }

    #[test]
    fn one_step_matches_single_kernel_reference() {
        let cfg = StencilConfig::small(StencilVariant::Global);
        let one = expected_after_steps(&cfg, 1);
        for i in 0..cfg.elems {
            assert_eq!(one[i as usize], expected_out(&cfg, i));
        }
    }

    #[test]
    fn tiling_cuts_global_loads() {
        let tiled = run(&mut sim(), &StencilConfig::small(StencilVariant::Tiled)).unwrap();
        let global = run(&mut sim(), &StencilConfig::small(StencilVariant::Global)).unwrap();
        let misses = |r: &gsi_sim::KernelRun| -> u64 {
            r.mem_stats.iter().map(|m| m.l1_misses + m.l1_hits + m.l1_coalesced).sum()
        };
        assert!(
            misses(&tiled.run) < misses(&global.run),
            "the tile must absorb the reuse: {} vs {}",
            misses(&tiled.run),
            misses(&global.run)
        );
        // And the reuse moves stalls out of the memory-data class.
        assert!(
            tiled.run.breakdown.cycles(StallKind::MemoryData)
                < global.run.breakdown.cycles(StallKind::MemoryData)
        );
    }
}
