//! Histogram with atomic bin updates — an atomics-contention workload.
//!
//! One worker per warp (the paper's one-thread-per-warp idiom) walks a
//! chunk of the input and fetch-adds into a shared bin array. Fewer bins
//! mean more contention at the L2 banks; with owned atomics enabled the
//! contention also exercises ownership migration.

use crate::hash::splitmix64;
use gsi_isa::{MemSem, Operand, Program, ProgramBuilder, Reg};
use gsi_sim::{KernelRun, LaunchSpec, SimError, Simulator};

/// Workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramConfig {
    /// Input elements.
    pub elems: u64,
    /// Number of bins (power of two; fewer = more contention).
    pub bins: u64,
    /// Worker warps per block.
    pub warps_per_block: usize,
    /// Blocks in the grid.
    pub grid_blocks: u64,
    /// Seed fixing the input.
    pub seed: u64,
}

impl HistogramConfig {
    /// A contended instance (few bins).
    pub fn contended() -> Self {
        HistogramConfig { elems: 8192, bins: 8, warps_per_block: 4, grid_blocks: 8, seed: 7 }
    }

    /// A spread-out instance (many bins).
    pub fn spread() -> Self {
        HistogramConfig { elems: 8192, bins: 256, warps_per_block: 4, grid_blocks: 8, seed: 7 }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        HistogramConfig { elems: 1024, bins: 16, warps_per_block: 2, grid_blocks: 4, seed: 7 }
    }

    /// Total worker warps.
    pub fn workers(&self) -> u64 {
        self.grid_blocks * self.warps_per_block as u64
    }

    /// Elements per worker.
    pub fn chunk(&self) -> u64 {
        self.elems / self.workers()
    }

    fn validate(&self) {
        assert!(self.bins.is_power_of_two(), "bins must be a power of two");
        assert_eq!(self.elems % self.workers(), 0, "elements must split evenly");
        assert!(self.chunk() >= 1, "every worker needs at least one element");
    }
}

/// Memory layout.
#[derive(Debug, Clone, Copy)]
pub struct HistogramLayout {
    /// Input array base.
    pub input: u64,
    /// Bin array base.
    pub bins: u64,
}

impl HistogramLayout {
    /// Lay out the structures for `cfg`.
    pub fn new(cfg: &HistogramConfig) -> Self {
        let base = 0xA0_0000u64;
        HistogramLayout { input: base, bins: base + cfg.elems * 8 }
    }
}

/// Input element `i`.
pub fn input_of(cfg: &HistogramConfig, i: u64) -> u64 {
    splitmix64(cfg.seed ^ i)
}

/// Host reference: the bin counts.
pub fn expected_bins(cfg: &HistogramConfig) -> Vec<u64> {
    let mut bins = vec![0u64; cfg.bins as usize];
    for i in 0..cfg.elems {
        bins[(input_of(cfg, i) % cfg.bins) as usize] += 1;
    }
    bins
}

// Registers: r1 = my chunk base addr (uniform per warp), r2 = bins base,
// r3 = remaining count, r4 = value, r5 = bin addr, r6 = atomic result.
const R_PTR: Reg = Reg(1);
const R_BINS: Reg = Reg(2);
const R_CNT: Reg = Reg(3);
const R_V: Reg = Reg(4);
const R_ADDR: Reg = Reg(5);
const R_OLD: Reg = Reg(6);

/// Build the histogram kernel (one worker per warp).
pub fn build_program(cfg: &HistogramConfig) -> Program {
    cfg.validate();
    let mut b = ProgramBuilder::new("histogram");
    b.ldi(R_CNT, cfg.chunk());
    let top = b.here();
    b.ld_global(R_V, R_PTR, 0);
    // bin = v % bins (bins is a power of two: mask)
    b.and(R_V, R_V, Operand::Imm((cfg.bins - 1) as i64));
    b.shl(R_V, R_V, Operand::Imm(3));
    b.add(R_ADDR, R_V, R_BINS);
    b.atom_add(R_OLD, R_ADDR, Operand::Imm(1), MemSem::Relaxed);
    b.addi(R_PTR, R_PTR, 8);
    b.subi(R_CNT, R_CNT, 1);
    b.bra_nz(R_CNT, top);
    b.exit();
    b.build().expect("histogram assembles")
}

/// Initialize the input array and zero the bins.
pub fn init_memory(sim: &mut Simulator, cfg: &HistogramConfig, lay: &HistogramLayout) {
    let g = sim.gmem_mut();
    for i in 0..cfg.elems {
        g.write_word(lay.input + i * 8, input_of(cfg, i));
    }
    for bin in 0..cfg.bins {
        g.write_word(lay.bins + bin * 8, 0);
    }
}

/// Build the launch.
pub fn launch_spec(cfg: &HistogramConfig, lay: HistogramLayout) -> LaunchSpec {
    let program = build_program(cfg);
    let warps = cfg.warps_per_block as u64;
    let chunk = cfg.chunk();
    LaunchSpec::new(program, cfg.grid_blocks, cfg.warps_per_block).with_init(
        move |w, block, warp, _ctx| {
            let worker = block * warps + warp as u64;
            w.set_uniform(R_PTR.0, lay.input + worker * chunk * 8);
            w.set_uniform(R_BINS.0, lay.bins);
        },
    )
}

/// The outcome of a verified histogram run.
#[derive(Debug, Clone)]
pub struct HistogramRun {
    /// The kernel execution record.
    pub run: KernelRun,
    /// Bins verified against the host reference.
    pub verified_bins: u64,
}

/// Run the histogram on `sim` and verify every bin.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if any bin count disagrees with the host reference (a lost
/// atomic update).
pub fn run(sim: &mut Simulator, cfg: &HistogramConfig) -> Result<HistogramRun, SimError> {
    let lay = HistogramLayout::new(cfg);
    init_memory(sim, cfg, &lay);
    let spec = launch_spec(cfg, lay);
    let run = sim.run_kernel(&spec)?;
    let want = expected_bins(cfg);
    for (bin, &w) in want.iter().enumerate() {
        let got = sim.gmem().read_word(lay.bins + bin as u64 * 8);
        assert_eq!(got, w, "bin {bin}: lost or duplicated atomic updates");
    }
    Ok(HistogramRun { run, verified_bins: cfg.bins })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_sim::SystemConfig;

    #[test]
    fn reference_counts_sum_to_elems() {
        let cfg = HistogramConfig::small();
        assert_eq!(expected_bins(&cfg).iter().sum::<u64>(), cfg.elems);
    }

    #[test]
    fn runs_and_verifies() {
        let cfg = HistogramConfig::small();
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = run(&mut sim, &cfg).unwrap();
        assert_eq!(out.verified_bins, cfg.bins);
    }

    #[test]
    fn verifies_under_owned_atomics() {
        // Bin ownership migrates constantly; counts must still be exact.
        let cfg = HistogramConfig::small();
        let sys = SystemConfig::paper()
            .with_gpu_cores(4)
            .with_protocol(gsi_mem::Protocol::DeNovo)
            .with_owned_atomics(true);
        let mut sim = Simulator::new(sys);
        run(&mut sim, &cfg).unwrap();
    }

    #[test]
    fn fewer_bins_mean_more_bank_pressure() {
        // Enough concurrent workers that a single L2 bank's pipeline (one
        // message per cycle) actually saturates when every atomic lands on
        // the same line.
        let base = HistogramConfig {
            elems: 6144, // 48 workers x 128 elements
            warps_per_block: 4,
            grid_blocks: 12,
            ..HistogramConfig::small()
        };
        let contended = HistogramConfig { bins: 2, ..base };
        let spread = HistogramConfig { bins: 1024, ..base };
        let mut s1 = Simulator::new(SystemConfig::paper().with_gpu_cores(12));
        let mut s2 = Simulator::new(SystemConfig::paper().with_gpu_cores(12));
        let a = run(&mut s1, &contended).unwrap();
        let b = run(&mut s2, &spread).unwrap();
        // Two bins funnel every atomic through one L2 bank; the
        // serialization costs cycles.
        assert!(a.run.cycles > b.run.cycles, "{} vs {}", a.run.cycles, b.run.cycles);
    }
}
