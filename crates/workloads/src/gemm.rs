//! Tiled dense matrix multiply (`C = A x B`, wrapping u64 arithmetic) —
//! the canonical scratchpad showcase: each thread block stages square tiles
//! of `A` and `B` in its scratchpad partition and reuses every staged
//! element `T` times, with a barrier between the staging and compute
//! phases of every tile step.
//!
//! A global (untiled) variant reads the operands straight from the memory
//! hierarchy, so the breakdown comparison quantifies what the tile buys —
//! the same methodology the paper applies to the implicit microbenchmark.

use crate::hash::splitmix64;
use gsi_isa::{Operand, Program, ProgramBuilder, Reg, WARP_LANES};
use gsi_sim::{KernelRun, LaunchSpec, SimError, Simulator};

/// Tile edge: 8 x 8 = 64 threads = 2 warps per block.
pub const TILE: u64 = 8;

/// Whether the kernel stages tiles in the scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmVariant {
    /// Stage A- and B-tiles in the scratchpad with barriers.
    Tiled,
    /// Read operands directly from global memory.
    Global,
}

/// Workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Matrix dimension (n x n); must be a multiple of [`TILE`].
    pub n: u64,
    /// Variant.
    pub variant: GemmVariant,
    /// Seed fixing the inputs.
    pub seed: u64,
}

impl GemmConfig {
    /// A medium instance.
    pub fn medium(variant: GemmVariant) -> Self {
        GemmConfig { n: 64, variant, seed: 0x6E44 }
    }

    /// A small instance for tests.
    pub fn small(variant: GemmVariant) -> Self {
        GemmConfig { n: 32, variant, seed: 0x6E44 }
    }

    /// Blocks in the grid: one per output tile.
    pub fn grid_blocks(&self) -> u64 {
        (self.n / TILE) * (self.n / TILE)
    }

    /// Warps per block (TILE*TILE threads).
    pub fn warps_per_block(&self) -> usize {
        (TILE * TILE) as usize / WARP_LANES
    }

    fn validate(&self) {
        assert!(self.n >= TILE && self.n.is_multiple_of(TILE), "n must be a multiple of the tile");
    }
}

/// Element `A[r][c]`.
pub fn a_of(cfg: &GemmConfig, r: u64, c: u64) -> u64 {
    splitmix64(cfg.seed ^ (r * cfg.n + c)) & 0xFFFF
}

/// Element `B[r][c]`.
pub fn b_of(cfg: &GemmConfig, r: u64, c: u64) -> u64 {
    splitmix64(cfg.seed.wrapping_add(0x51) ^ (r * cfg.n + c)) & 0xFFFF
}

/// Host reference `C[r][c]` (wrapping).
pub fn expected_c(cfg: &GemmConfig, r: u64, c: u64) -> u64 {
    (0..cfg.n).fold(0u64, |acc, k| acc.wrapping_add(a_of(cfg, r, k).wrapping_mul(b_of(cfg, k, c))))
}

/// Memory layout: A, B, C row-major.
#[derive(Debug, Clone, Copy)]
pub struct GemmLayout {
    /// A base.
    pub a: u64,
    /// B base.
    pub b: u64,
    /// C base.
    pub c: u64,
}

impl GemmLayout {
    /// Lay out the matrices for `cfg`.
    pub fn new(cfg: &GemmConfig) -> Self {
        let base = 0x160_0000u64;
        let m = cfg.n * cfg.n * 8;
        GemmLayout { a: base, b: base + m, c: base + 2 * m }
    }
}

// Registers:
const R_TID: Reg = Reg(0); // thread id in block (per lane)
const R_A: Reg = Reg(1); // A base (uniform)
const R_B: Reg = Reg(2); // B base
const R_C: Reg = Reg(3); // C base
const R_LBASE: Reg = Reg(4); // scratchpad slot base
const R_TROW: Reg = Reg(5); // tile row index of this block
const R_TCOL: Reg = Reg(6); // tile col index of this block
const R_ROW: Reg = Reg(7); // my row within the tile
const R_COL: Reg = Reg(8); // my col within the tile
const R_GROW: Reg = Reg(9); // my global row
const R_GCOL: Reg = Reg(10); // my global col
const R_ACC: Reg = Reg(11);
const R_K0: Reg = Reg(12); // tile step base
const R_K: Reg = Reg(13); // inner k
const R_T: Reg = Reg(14);
const R_T2: Reg = Reg(15);
const R_AV: Reg = Reg(16);
const R_BV: Reg = Reg(17);

/// Build the GEMM kernel.
pub fn build_program(cfg: &GemmConfig) -> Program {
    cfg.validate();
    let n = cfg.n;
    let mut b = ProgramBuilder::new("gemm");
    // row = tid / TILE, col = tid % TILE (TILE is a power of two)
    b.shr(R_ROW, R_TID, Operand::Imm(3));
    b.and(R_COL, R_TID, Operand::Imm((TILE - 1) as i64));
    b.mul(R_GROW, R_TROW, Operand::Imm(TILE as i64));
    b.add(R_GROW, R_GROW, R_ROW);
    b.mul(R_GCOL, R_TCOL, Operand::Imm(TILE as i64));
    b.add(R_GCOL, R_GCOL, R_COL);
    b.ldi(R_ACC, 0);
    b.ldi(R_K0, 0);
    let step = b.here();
    match cfg.variant {
        GemmVariant::Tiled => {
            // Stage Atile[row][col] = A[grow][k0+col] and
            //       Btile[row][col] = B[k0+row][gcol].
            // Scratchpad layout: Atile at slot+0, Btile at slot+TILE*TILE*8.
            b.add(R_T, R_K0, R_COL);
            b.mul(R_T2, R_GROW, Operand::Imm(n as i64));
            b.add(R_T, R_T, R_T2);
            b.shl(R_T, R_T, Operand::Imm(3));
            b.add(R_T, R_T, R_A);
            b.ld_global(R_AV, R_T, 0);
            b.shl(R_T, R_TID, Operand::Imm(3));
            b.add(R_T, R_T, R_LBASE);
            b.st_local(R_AV, R_T, 0);
            b.add(R_T, R_K0, R_ROW);
            b.mul(R_T, R_T, Operand::Imm(n as i64));
            b.add(R_T, R_T, R_GCOL);
            b.shl(R_T, R_T, Operand::Imm(3));
            b.add(R_T, R_T, R_B);
            b.ld_global(R_BV, R_T, 0);
            b.shl(R_T, R_TID, Operand::Imm(3));
            b.add(R_T, R_T, R_LBASE);
            b.st_local(R_BV, R_T, (TILE * TILE * 8) as i64);
            b.bar();
            // acc += sum_k Atile[row][k] * Btile[k][col]
            b.ldi(R_K, 0);
            let inner = b.here();
            b.shl(R_T, R_ROW, Operand::Imm(3)); // row * TILE entries
            b.add(R_T, R_T, R_K);
            b.shl(R_T, R_T, Operand::Imm(3));
            b.add(R_T, R_T, R_LBASE);
            b.ld_local(R_AV, R_T, 0);
            b.shl(R_T, R_K, Operand::Imm(3));
            b.add(R_T, R_T, R_COL);
            b.shl(R_T, R_T, Operand::Imm(3));
            b.add(R_T, R_T, R_LBASE);
            b.ld_local(R_BV, R_T, (TILE * TILE * 8) as i64);
            b.mul(R_AV, R_AV, R_BV);
            b.add(R_ACC, R_ACC, R_AV);
            b.addi(R_K, R_K, 1);
            b.sltu(R_T, R_K, Operand::Imm(TILE as i64));
            b.bra_nz(R_T, inner);
            b.bar();
        }
        GemmVariant::Global => {
            // acc += sum_k A[grow][k0+k] * B[k0+k][gcol] from global memory.
            b.ldi(R_K, 0);
            let inner = b.here();
            b.add(R_T, R_K0, R_K);
            b.mul(R_T2, R_GROW, Operand::Imm(n as i64));
            b.add(R_T2, R_T2, R_T);
            b.shl(R_T2, R_T2, Operand::Imm(3));
            b.add(R_T2, R_T2, R_A);
            b.ld_global(R_AV, R_T2, 0);
            b.mul(R_T, R_T, Operand::Imm(n as i64));
            b.add(R_T, R_T, R_GCOL);
            b.shl(R_T, R_T, Operand::Imm(3));
            b.add(R_T, R_T, R_B);
            b.ld_global(R_BV, R_T, 0);
            b.mul(R_AV, R_AV, R_BV);
            b.add(R_ACC, R_ACC, R_AV);
            b.addi(R_K, R_K, 1);
            b.sltu(R_T, R_K, Operand::Imm(TILE as i64));
            b.bra_nz(R_T, inner);
        }
    }
    b.addi(R_K0, R_K0, TILE as i64);
    b.sltu(R_T, R_K0, Operand::Imm(n as i64));
    b.bra_nz(R_T, step);
    // C[grow][gcol] = acc
    b.mul(R_T, R_GROW, Operand::Imm(n as i64));
    b.add(R_T, R_T, R_GCOL);
    b.shl(R_T, R_T, Operand::Imm(3));
    b.add(R_T, R_T, R_C);
    b.st_global(R_ACC, R_T, 0);
    b.exit();
    b.build().expect("gemm assembles")
}

/// Initialize A and B.
pub fn init_memory(sim: &mut Simulator, cfg: &GemmConfig, lay: &GemmLayout) {
    let g = sim.gmem_mut();
    for r in 0..cfg.n {
        for c in 0..cfg.n {
            g.write_word(lay.a + (r * cfg.n + c) * 8, a_of(cfg, r, c));
            g.write_word(lay.b + (r * cfg.n + c) * 8, b_of(cfg, r, c));
        }
    }
}

/// Build the launch.
pub fn launch_spec(cfg: &GemmConfig, lay: GemmLayout) -> LaunchSpec {
    let program = build_program(cfg);
    let tiles_per_row = cfg.n / TILE;
    // Two TILE*TILE tiles per block.
    let slot_bytes = (2 * TILE * TILE * 8).next_multiple_of(64);
    LaunchSpec::new(program, cfg.grid_blocks(), cfg.warps_per_block()).with_init(
        move |w, block, warp, ctx| {
            w.set_per_lane(R_TID.0, move |lane| (warp * WARP_LANES + lane) as u64);
            w.set_uniform(R_A.0, lay.a);
            w.set_uniform(R_B.0, lay.b);
            w.set_uniform(R_C.0, lay.c);
            w.set_uniform(R_LBASE.0, ctx.slot as u64 * slot_bytes);
            w.set_uniform(R_TROW.0, block / tiles_per_row);
            w.set_uniform(R_TCOL.0, block % tiles_per_row);
        },
    )
}

/// The outcome of a verified GEMM run.
#[derive(Debug, Clone)]
pub struct GemmRun {
    /// The kernel execution record.
    pub run: KernelRun,
    /// Output elements verified.
    pub verified: u64,
}

/// Run GEMM on `sim` and verify every output element.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics on a wrong output element, or if the tiles of resident blocks
/// would overflow the scratchpad.
pub fn run(sim: &mut Simulator, cfg: &GemmConfig) -> Result<GemmRun, SimError> {
    if cfg.variant == GemmVariant::Tiled {
        let slot_bytes = (2 * TILE * TILE * 8).next_multiple_of(64);
        assert!(
            slot_bytes * sim.config().sm.max_blocks as u64 <= sim.config().mem.scratch_bytes,
            "tiles of resident blocks must fit in the scratchpad"
        );
    }
    let lay = GemmLayout::new(cfg);
    init_memory(sim, cfg, &lay);
    let spec = launch_spec(cfg, lay);
    let run = sim.run_kernel(&spec)?;
    for r in 0..cfg.n {
        for c in 0..cfg.n {
            assert_eq!(
                sim.gmem().read_word(lay.c + (r * cfg.n + c) * 8),
                expected_c(cfg, r, c),
                "C[{r}][{c}] wrong ({:?})",
                cfg.variant
            );
        }
    }
    Ok(GemmRun { run, verified: cfg.n * cfg.n })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_core::StallKind;
    use gsi_sim::SystemConfig;

    fn sim() -> Simulator {
        Simulator::new(SystemConfig::paper().with_gpu_cores(4))
    }

    #[test]
    fn both_variants_run_and_verify() {
        for variant in [GemmVariant::Tiled, GemmVariant::Global] {
            let cfg = GemmConfig::small(variant);
            let out = run(&mut sim(), &cfg).unwrap();
            assert_eq!(out.verified, cfg.n * cfg.n, "{variant:?}");
        }
    }

    #[test]
    fn tiling_cuts_memory_traffic_and_data_stalls() {
        let tiled = run(&mut sim(), &GemmConfig::small(GemmVariant::Tiled)).unwrap();
        let global = run(&mut sim(), &GemmConfig::small(GemmVariant::Global)).unwrap();
        let accesses = |r: &gsi_sim::KernelRun| -> u64 {
            r.mem_stats.iter().map(|m| m.l1_hits + m.l1_misses + m.l1_coalesced).sum()
        };
        assert!(
            accesses(&tiled.run) * 2 < accesses(&global.run),
            "each staged element is reused TILE times: {} vs {}",
            accesses(&tiled.run),
            accesses(&global.run)
        );
        assert!(
            tiled.run.breakdown.cycles(StallKind::MemoryData)
                < global.run.breakdown.cycles(StallKind::MemoryData)
        );
    }

    #[test]
    fn geometry() {
        let cfg = GemmConfig::small(GemmVariant::Tiled);
        assert_eq!(cfg.grid_blocks(), 16);
        assert_eq!(cfg.warps_per_block(), 2);
    }

    #[test]
    #[should_panic(expected = "multiple of the tile")]
    fn bad_dimension_rejected() {
        build_program(&GemmConfig { n: 12, variant: GemmVariant::Global, seed: 0 });
    }
}
