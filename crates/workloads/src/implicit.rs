//! The *implicit* microbenchmark — case study 2 of the GSI paper
//! (from the stash paper of Komuravelli et al.).
//!
//! An array is partitioned into per-thread-block chunks; every thread loads
//! its element into the block's local memory, transforms it, and writes it
//! back. Three local-memory organizations are compared:
//!
//! * [`LocalMemStyle::Scratchpad`] — explicit copy-in/copy-out through the
//!   core pipeline (pollutes registers and the L1; the extra address
//!   arithmetic throttles the memory request rate).
//! * [`LocalMemStyle::ScratchpadDma`] — a D2MA-style engine bulk-loads the
//!   chunk (and stores it back), bypassing the pipeline; accesses to a
//!   pending transfer stall the core (pending-DMA structural stalls).
//! * [`LocalMemStyle::Stash`] — the chunk is *mapped*; data loads on
//!   demand at first touch and dirty data writes back lazily.
//!
//! The transform applied `compute_iters` times per element is
//! `v ← (v ^ (v >> 7)) + 0x9E37`, mirrored exactly by the host reference
//! in [`expected_value`].

use gsi_isa::{Operand, Program, ProgramBuilder, Reg, WARP_LANES};
use gsi_mem::LocalMemKind;
use gsi_sim::{KernelRun, LaunchSpec, SimError, Simulator};

/// Which local-memory organization the kernel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalMemStyle {
    /// Baseline software-managed scratchpad.
    Scratchpad,
    /// Scratchpad with a DMA engine (D2MA-style).
    ScratchpadDma,
    /// The stash.
    Stash,
}

impl LocalMemStyle {
    /// The memory-system configuration this style requires.
    pub fn mem_kind(self) -> LocalMemKind {
        match self {
            LocalMemStyle::Scratchpad => LocalMemKind::Scratchpad,
            LocalMemStyle::ScratchpadDma => LocalMemKind::ScratchpadDma,
            LocalMemStyle::Stash => LocalMemKind::Stash,
        }
    }

    /// All three styles, in the paper's presentation order.
    pub const ALL: [LocalMemStyle; 3] =
        [LocalMemStyle::Scratchpad, LocalMemStyle::ScratchpadDma, LocalMemStyle::Stash];
}

impl std::fmt::Display for LocalMemStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LocalMemStyle::Scratchpad => "scratchpad",
            LocalMemStyle::ScratchpadDma => "scratchpad+DMA",
            LocalMemStyle::Stash => "stash",
        };
        f.write_str(s)
    }
}

/// Workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplicitConfig {
    /// Total array elements (one 64-bit word each).
    pub elems: u64,
    /// Warps per thread block; the chunk is `warps * 32` elements.
    pub warps_per_block: usize,
    /// Transform applications per element.
    pub compute_iters: u64,
    /// Local-memory organization.
    pub style: LocalMemStyle,
}

impl ImplicitConfig {
    /// The paper-scale run: 16 K elements in 128-element chunks on one SM.
    pub fn paper(style: LocalMemStyle) -> Self {
        ImplicitConfig { elems: 16 * 1024, warps_per_block: 4, compute_iters: 4, style }
    }

    /// A small run for tests.
    pub fn small(style: LocalMemStyle) -> Self {
        ImplicitConfig { elems: 1024, warps_per_block: 2, compute_iters: 2, style }
    }

    /// Elements per thread block.
    pub fn chunk_elems(&self) -> u64 {
        (self.warps_per_block * WARP_LANES) as u64
    }

    /// Bytes per thread-block chunk.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_elems() * 8
    }

    /// Thread blocks in the grid.
    pub fn grid_blocks(&self) -> u64 {
        self.elems.div_ceil(self.chunk_elems())
    }

    fn validate(&self) {
        assert!(self.elems > 0, "empty array");
        assert_eq!(self.elems % self.chunk_elems(), 0, "array must be a whole number of chunks");
        assert!(self.compute_iters >= 1, "at least one transform");
    }
}

/// Base address of the array in global memory.
pub const ARRAY_BASE: u64 = 0x40_0000;

/// Initial value of element `i`.
pub fn initial_value(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9) ^ 0x5555_5555
}

/// One application of the kernel's transform.
fn transform(v: u64) -> u64 {
    (v ^ (v >> 7)).wrapping_add(0x9E37)
}

/// The value element `i` must hold after the kernel.
pub fn expected_value(i: u64, compute_iters: u64) -> u64 {
    let mut v = initial_value(i);
    for _ in 0..compute_iters {
        v = transform(v);
    }
    v
}

// Register conventions. Only the raw CUDA-equivalent inputs are
// preloaded (thread id, array base, block id, slot base, warp id); all
// addressing arithmetic happens in the kernel, because the *instruction
// overhead* of software scratchpad management is one of the effects the
// paper measures.
const R_TID: Reg = Reg(0); // flat thread id within the block (per lane)
const R_ABASE: Reg = Reg(1); // array base address (uniform)
const R_LBASE: Reg = Reg(2); // local base of this block's slot (uniform)
const R_WARP: Reg = Reg(3); // warp index within the block (uniform)
const R_BID: Reg = Reg(4); // block id (uniform)
const R_GADDR: Reg = Reg(5);
const R_LADDR: Reg = Reg(6);
const R_V: Reg = Reg(7);
const R_T: Reg = Reg(8);
const R_CNT: Reg = Reg(9);
const R_GBASE: Reg = Reg(10); // computed chunk base

/// Emit the per-element transform on `R_V` (3 ALU instructions).
fn emit_transform(b: &mut ProgramBuilder) {
    b.shr(R_T, R_V, Operand::Imm(7));
    b.xor(R_V, R_V, R_T);
    b.addi(R_V, R_V, 0x9E37);
}

/// Emit `R_GBASE = R_ABASE + R_BID * chunk_bytes` (the chunk base every
/// variant needs).
fn emit_chunk_base(b: &mut ProgramBuilder, chunk: u64) {
    b.mul(R_T, R_BID, Operand::Imm(chunk as i64));
    b.add(R_GBASE, R_ABASE, R_T);
}

/// Emit `R_GADDR = R_GBASE + R_TID * 8`.
fn emit_global_addr(b: &mut ProgramBuilder) {
    b.shl(R_T, R_TID, Operand::Imm(3));
    b.add(R_GADDR, R_GBASE, R_T);
}

/// Emit `R_LADDR = R_LBASE + R_TID * 8`.
fn emit_local_addr(b: &mut ProgramBuilder) {
    b.shl(R_T, R_TID, Operand::Imm(3));
    b.add(R_LADDR, R_LBASE, R_T);
}

/// Emit the compute loop over the local copy at `R_LADDR`.
fn emit_compute_loop(b: &mut ProgramBuilder, iters: u64) {
    b.ldi(R_CNT, iters);
    let top = b.here();
    b.ld_local(R_V, R_LADDR, 0);
    emit_transform(b);
    b.st_local(R_V, R_LADDR, 0);
    b.subi(R_CNT, R_CNT, 1);
    b.bra_nz(R_CNT, top);
}

/// Build the kernel for `cfg.style`.
pub fn build_program(cfg: &ImplicitConfig) -> Program {
    cfg.validate();
    let chunk = cfg.chunk_bytes();
    match cfg.style {
        LocalMemStyle::Scratchpad => {
            let mut b = ProgramBuilder::new("implicit-scratchpad");
            // Explicit copy-in: full address arithmetic plus a load/store
            // pair per element. The interleaved address calculations are
            // what limits the rate at which the baseline issues global
            // loads (Section 6.2.3 of the paper), and the copies pollute
            // registers and the L1.
            emit_chunk_base(&mut b, chunk);
            emit_global_addr(&mut b);
            emit_local_addr(&mut b);
            b.ld_global(R_V, R_GADDR, 0);
            b.st_local(R_V, R_LADDR, 0);
            b.bar();
            // Compute phase recomputes its local address, as register-
            // starved real kernels do.
            emit_local_addr(&mut b);
            emit_compute_loop(&mut b, cfg.compute_iters);
            b.bar();
            // Explicit copy-out, with the address arithmetic again.
            emit_global_addr(&mut b);
            emit_local_addr(&mut b);
            b.ld_local(R_V, R_LADDR, 0);
            b.st_global(R_V, R_GADDR, 0);
            b.exit();
            b.build().expect("scratchpad kernel assembles")
        }
        LocalMemStyle::ScratchpadDma => {
            let mut b = ProgramBuilder::new("implicit-dma");
            let after_ld = b.label();
            let after_st = b.label();
            emit_chunk_base(&mut b, chunk);
            emit_local_addr(&mut b);
            // Warp 0 starts the bulk load; everyone else just blocks on the
            // pending transfer at first use.
            b.bra_nz(R_WARP, after_ld);
            b.dma_load(R_GBASE, R_LBASE, chunk);
            b.bind(after_ld);
            b.bar();
            emit_compute_loop(&mut b, cfg.compute_iters);
            b.bar();
            b.bra_nz(R_WARP, after_st);
            b.dma_store(R_GBASE, R_LBASE, chunk);
            b.bind(after_st);
            b.exit();
            b.build().expect("dma kernel assembles")
        }
        LocalMemStyle::Stash => {
            let mut b = ProgramBuilder::new("implicit-stash");
            let after_map = b.label();
            emit_chunk_base(&mut b, chunk);
            // The stash is directly addressed: one local address, no
            // per-element global addressing at all.
            emit_local_addr(&mut b);
            b.bra_nz(R_WARP, after_map);
            b.stash_map(R_GBASE, R_LBASE, chunk, true);
            b.bind(after_map);
            b.bar();
            emit_compute_loop(&mut b, cfg.compute_iters);
            // Dirty stash data writes back lazily (on remap or kernel end).
            b.exit();
            b.build().expect("stash kernel assembles")
        }
    }
}

/// Initialize the array.
pub fn init_memory(sim: &mut Simulator, cfg: &ImplicitConfig) {
    let g = sim.gmem_mut();
    for i in 0..cfg.elems {
        g.write_word(ARRAY_BASE + i * 8, initial_value(i));
    }
}

/// Build the launch for `cfg`.
pub fn launch_spec(cfg: &ImplicitConfig) -> LaunchSpec {
    let program = build_program(cfg);
    let chunk = cfg.chunk_bytes();
    let _ = chunk;
    LaunchSpec::new(program, cfg.grid_blocks(), cfg.warps_per_block).with_init(
        move |w, block, warp, ctx| {
            w.set_per_lane(R_TID.0, move |lane| (warp * WARP_LANES + lane) as u64);
            w.set_uniform(R_ABASE.0, ARRAY_BASE);
            w.set_uniform(R_LBASE.0, ctx.slot as u64 * chunk);
            w.set_uniform(R_WARP.0, warp as u64);
            w.set_uniform(R_BID.0, block);
        },
    )
}

/// The outcome of a verified implicit run.
#[derive(Debug, Clone)]
pub struct ImplicitRun {
    /// The kernel execution record.
    pub run: KernelRun,
    /// Elements verified against the host reference.
    pub verified_elems: u64,
}

/// Run the microbenchmark on `sim` (whose memory configuration must match
/// `cfg.style`) and verify every element of the result.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if the simulator's memory configuration does not match
/// `cfg.style`, or if any element verifies incorrectly.
pub fn run(sim: &mut Simulator, cfg: &ImplicitConfig) -> Result<ImplicitRun, SimError> {
    assert_eq!(
        sim.config().mem.local_kind,
        cfg.style.mem_kind(),
        "simulator local-memory configuration must match the workload style"
    );
    assert!(
        cfg.chunk_bytes() * sim.config().sm.max_blocks as u64 <= sim.config().mem.scratch_bytes,
        "resident blocks must fit in the scratchpad/stash"
    );
    init_memory(sim, cfg);
    let spec = launch_spec(cfg);
    let run = sim.run_kernel(&spec)?;
    for i in 0..cfg.elems {
        let got = sim.gmem().read_word(ARRAY_BASE + i * 8);
        let want = expected_value(i, cfg.compute_iters);
        assert_eq!(got, want, "element {i} wrong under {}", cfg.style);
    }
    Ok(ImplicitRun { run, verified_elems: cfg.elems })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_core::{MemStructCause, StallKind};
    use gsi_sim::SystemConfig;

    fn sim_for(style: LocalMemStyle) -> Simulator {
        Simulator::new(SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind()))
    }

    #[test]
    fn host_reference_transform() {
        assert_ne!(expected_value(0, 1), initial_value(0));
        assert_eq!(expected_value(5, 0), initial_value(5));
        // transform is deterministic and iteration-sensitive
        assert_ne!(expected_value(7, 1), expected_value(7, 2));
    }

    #[test]
    fn config_geometry() {
        let c = ImplicitConfig::small(LocalMemStyle::Scratchpad);
        assert_eq!(c.chunk_elems(), 64);
        assert_eq!(c.chunk_bytes(), 512);
        assert_eq!(c.grid_blocks(), 16);
    }

    #[test]
    fn all_three_styles_run_and_verify() {
        for style in LocalMemStyle::ALL {
            let cfg = ImplicitConfig::small(style);
            let mut sim = sim_for(style);
            let out = run(&mut sim, &cfg).unwrap();
            assert_eq!(out.verified_elems, cfg.elems, "{style}");
            assert!(out.run.cycles > 0);
        }
    }

    #[test]
    fn dma_and_stash_issue_fewer_instructions_than_scratchpad() {
        let mut counts = Vec::new();
        for style in LocalMemStyle::ALL {
            let cfg = ImplicitConfig::small(style);
            let mut sim = sim_for(style);
            let out = run(&mut sim, &cfg).unwrap();
            counts.push((style, out.run.instructions));
        }
        let scratch = counts[0].1;
        let dma = counts[1].1;
        let stash = counts[2].1;
        assert!(dma < scratch, "DMA offloads the copies: {counts:?}");
        assert!(stash < scratch, "stash loads implicitly: {counts:?}");
    }

    #[test]
    fn dma_run_shows_pending_dma_stalls() {
        let cfg = ImplicitConfig::small(LocalMemStyle::ScratchpadDma);
        let mut sim = sim_for(LocalMemStyle::ScratchpadDma);
        let out = run(&mut sim, &cfg).unwrap();
        assert!(
            out.run.breakdown.mem_struct_cycles(MemStructCause::PendingDma) > 0,
            "{:?}",
            out.run.breakdown
        );
    }

    #[test]
    fn scratchpad_run_has_memory_data_stalls() {
        let cfg = ImplicitConfig::small(LocalMemStyle::Scratchpad);
        let mut sim = sim_for(LocalMemStyle::Scratchpad);
        let out = run(&mut sim, &cfg).unwrap();
        assert!(out.run.breakdown.cycles(StallKind::MemoryData) > 0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_simulator_config_panics() {
        let cfg = ImplicitConfig::small(LocalMemStyle::Stash);
        let mut sim = sim_for(LocalMemStyle::Scratchpad);
        let _ = run(&mut sim, &cfg);
    }
}
