//! Unbalanced Tree Search (UTS) and its decentralized variant (UTSD) —
//! case study 1 of the GSI paper.
//!
//! A deterministic unbalanced tree is processed through task queues. Each
//! queue element is a packed node descriptor `(depth << 56) | seed`; a
//! node's child count and child seeds derive from a splitmix64 hash of its
//! seed, so the tree's shape is fixed by the root seed and both the
//! simulated kernel and a host-side reference ([`expected_nodes`]) can walk
//! the exact same tree.
//!
//! * [`Variant::Centralized`] (UTS): one global queue under one global
//!   lock. All workers serialize through it — the paper's
//!   synchronization-stall-dominated baseline (Figure 6.1).
//! * [`Variant::Decentralized`] (UTSD): each SM additionally has a local
//!   queue under a local lock. Workers pop local-first and push local
//!   unless the batch would overflow, in which case the whole batch spills
//!   to the global queue (which is also how the root's children get
//!   distributed across SMs). This mirrors the paper's UTSD (Figure 6.2).
//!
//! Termination uses the standard UTS trick: a global `remaining` counter
//! (queued + in-flight nodes) updated with a fetch-and-add of
//! `children - 1` per processed node; the worker that drives it to zero
//! sets the `done` flag every worker polls.

use crate::hash::{emit_splitmix, splitmix64};
use gsi_isa::{MemSem, Operand, Program, ProgramBuilder, Reg};
use gsi_sim::{KernelRun, LaunchSpec, SimError, Simulator};

/// Mask selecting the 56-bit seed field of a node descriptor.
pub const SEED_MASK: u64 = (1 << 56) - 1;

/// Which task-queue organization to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// UTS: a single global task queue.
    Centralized,
    /// UTSD: per-SM local queues with global overflow.
    Decentralized,
}

/// Tree shape and launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtsConfig {
    /// Children of the root node (the UTS `b0` parameter).
    pub root_children: u64,
    /// Children of a non-leaf interior node (the UTS `m` parameter).
    pub branch: u64,
    /// Probability (out of 1000) that an interior node has children (the
    /// UTS `q` parameter). `branch * q_per_mille < 1000` keeps the tree
    /// finite in expectation.
    pub q_per_mille: u64,
    /// Hard depth cap guaranteeing termination.
    pub max_depth: u64,
    /// Root seed fixing the tree shape.
    pub root_seed: u64,
    /// Thread blocks in the grid (one worker per warp).
    pub grid_blocks: u64,
    /// Warps per block.
    pub warps_per_block: usize,
    /// UTSD local queue capacity (entries; must be a power of two).
    pub local_cap: u64,
}

impl UtsConfig {
    /// The scale used for the paper-style figures: 15 blocks of 4 warps
    /// (60 workers, one block per SM) over a tree of a few thousand nodes.
    pub fn paper() -> Self {
        UtsConfig {
            root_children: 96,
            branch: 2,
            q_per_mille: 460,
            max_depth: 12,
            root_seed: 0x1234_5678,
            grid_blocks: 15,
            warps_per_block: 4,
            local_cap: 32,
        }
    }

    /// A small tree for tests.
    pub fn small() -> Self {
        UtsConfig {
            root_children: 12,
            branch: 2,
            q_per_mille: 350,
            max_depth: 8,
            root_seed: 0xBEEF,
            grid_blocks: 4,
            warps_per_block: 2,
            local_cap: 8,
        }
    }

    fn validate(&self) {
        assert!(self.root_children > 0, "root must have children");
        assert!(self.branch > 0, "branch factor must be nonzero");
        assert!(
            self.branch * self.q_per_mille < 1000,
            "supercritical tree (m*q >= 1): expected size is unbounded"
        );
        assert!(self.local_cap.is_power_of_two(), "local queue capacity must be a power of two");
        assert!(self.max_depth >= 1 && self.max_depth < 200, "depth cap out of range");
    }
}

/// Child count of a node at `depth` whose seed hashes to `h`.
fn child_count(cfg: &UtsConfig, depth: u64, h: u64) -> u64 {
    if depth == 0 {
        cfg.root_children
    } else if depth >= cfg.max_depth {
        0
    } else if h % 1000 < cfg.q_per_mille {
        cfg.branch
    } else {
        0
    }
}

/// Host-side reference walk of the tree: the exact number of nodes the
/// kernel must process.
///
/// ```
/// use gsi_workloads::uts::{expected_nodes, UtsConfig};
/// let n = expected_nodes(&UtsConfig::small());
/// assert!(n > UtsConfig::small().root_children);
/// assert_eq!(n, expected_nodes(&UtsConfig::small()), "deterministic");
/// ```
pub fn expected_nodes(cfg: &UtsConfig) -> u64 {
    let mut stack = vec![(0u64, cfg.root_seed & SEED_MASK)];
    let mut count = 0u64;
    while let Some((depth, seed)) = stack.pop() {
        count += 1;
        let h = splitmix64(seed);
        let c = child_count(cfg, depth, h);
        for i in 0..c {
            let cs = splitmix64(h ^ (i + 1)) & SEED_MASK;
            stack.push((depth + 1, cs));
        }
    }
    count
}

/// Global-memory layout of the queues and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtsLayout {
    /// Base byte address.
    pub base: u64,
    /// Global queue capacity in entries (sized to the exact tree).
    pub global_cap: u64,
    /// Local queue capacity in entries.
    pub local_cap: u64,
}

impl UtsLayout {
    /// Lay out the structures for `cfg` (global queue sized to the tree).
    pub fn new(cfg: &UtsConfig) -> Self {
        let nodes = expected_nodes(cfg);
        UtsLayout {
            base: 0x10_0000,
            global_cap: (nodes + cfg.root_children + 64).next_power_of_two(),
            local_cap: cfg.local_cap,
        }
    }

    /// Global queue lock.
    pub fn lock(&self) -> u64 {
        self.base
    }
    /// Global queue head index.
    pub fn head(&self) -> u64 {
        self.base + 64
    }
    /// Global queue tail index.
    pub fn tail(&self) -> u64 {
        self.base + 128
    }
    /// Active-node counter.
    pub fn remaining(&self) -> u64 {
        self.base + 192
    }
    /// Completion flag.
    pub fn done(&self) -> u64 {
        self.base + 256
    }
    /// Processed-node counter (verification).
    pub fn processed(&self) -> u64 {
        self.base + 320
    }
    /// Global queue array base.
    pub fn queue(&self) -> u64 {
        self.base + 1024
    }
    fn local_base(&self, sm: u8) -> u64 {
        let after_queue = self.queue() + self.global_cap * 8;
        let stride = 256 + self.local_cap * 8;
        after_queue + u64::from(sm) * stride.next_multiple_of(64)
    }
    /// SM `sm`'s local queue lock.
    pub fn local_lock(&self, sm: u8) -> u64 {
        self.local_base(sm)
    }
    /// SM `sm`'s local queue head index.
    pub fn local_head(&self, sm: u8) -> u64 {
        self.local_base(sm) + 64
    }
    /// SM `sm`'s local queue tail index.
    pub fn local_tail(&self, sm: u8) -> u64 {
        self.local_base(sm) + 128
    }
    /// SM `sm`'s local queue array base.
    pub fn local_queue(&self, sm: u8) -> u64 {
        self.local_base(sm) + 256
    }
}

// Register conventions shared by both kernels.
const R_LOCK: Reg = Reg(1);
const R_HEAD: Reg = Reg(2);
const R_TAIL: Reg = Reg(3);
const R_REMAIN: Reg = Reg(4);
const R_DONE: Reg = Reg(5);
const R_QBASE: Reg = Reg(6);
const R_PROC: Reg = Reg(7);
const R_NODE: Reg = Reg(8);
const R_DEPTH: Reg = Reg(9);
const R_SEED: Reg = Reg(10);
const R_H: Reg = Reg(11);
const R_C: Reg = Reg(12);
const R_I: Reg = Reg(13);
const T0: Reg = Reg(14);
const T1: Reg = Reg(15);
const T2: Reg = Reg(16);
const T3: Reg = Reg(17);
const T4: Reg = Reg(18);
const T5: Reg = Reg(19);
const R_MASK: Reg = Reg(20);
const R_ADDR: Reg = Reg(21);
const R_LLOCK: Reg = Reg(22);
const R_LHEAD: Reg = Reg(23);
const R_LTAIL: Reg = Reg(24);
const R_LQBASE: Reg = Reg(25);
const R_LMASK: Reg = Reg(26);
const R_LCAP: Reg = Reg(27);

/// Emit decode + hash + child-count selection. Enters with the node in
/// `R_NODE`; exits by jumping to `push` with `R_C > 0`, or to `counters`
/// with `R_C == 0`.
fn emit_decode_and_count(
    b: &mut ProgramBuilder,
    cfg: &UtsConfig,
    push: gsi_isa::Label,
    counters: gsi_isa::Label,
) {
    let no_children = b.label();
    let is_root = b.label();
    let m_children = b.label();
    b.shr(R_DEPTH, R_NODE, Operand::Imm(56));
    b.and(R_SEED, R_NODE, R_MASK);
    emit_splitmix(b, R_H, R_SEED, T0);
    b.seq(T0, R_DEPTH, Operand::Imm(0));
    b.bra_nz(T0, is_root);
    b.sltu(T0, R_DEPTH, Operand::Imm(cfg.max_depth as i64));
    b.bra_z(T0, no_children);
    b.remu(T0, R_H, Operand::Imm(1000));
    b.sltu(T0, T0, Operand::Imm(cfg.q_per_mille as i64));
    b.bra_nz(T0, m_children);
    b.bind(no_children);
    b.ldi(R_C, 0);
    b.jmp_to(counters);
    b.bind(is_root);
    b.ldi(R_C, cfg.root_children);
    b.jmp_to(push);
    b.bind(m_children);
    b.ldi(R_C, cfg.branch);
    b.jmp_to(push);
}

/// Emit the child-descriptor computation for child index `R_I` (0-based)
/// into `T4`, clobbering `T0`, `T3`, `T5`.
fn emit_make_child(b: &mut ProgramBuilder) {
    b.addi(T0, R_I, 1);
    b.xor(T0, T0, R_H);
    emit_splitmix(b, T4, T0, T3);
    b.and(T4, T4, R_MASK);
    b.addi(T5, R_DEPTH, 1);
    b.shl(T5, T5, Operand::Imm(56));
    b.or(T4, T4, T5);
}

/// Emit the per-node counter updates and the done-flag protocol. Enters
/// with `R_C` holding the child count; exits by jumping to `main`.
fn emit_counters(b: &mut ProgramBuilder, main: gsi_isa::Label) {
    b.subi(T0, R_C, 1); // c - 1 (wraps to -1 for leaves)
    b.atom_add(T1, R_REMAIN, T0, MemSem::Relaxed);
    b.add(T1, T1, T0); // new remaining = old + (c-1)
    b.atom_add(T2, R_PROC, Operand::Imm(1), MemSem::Relaxed);
    b.bra_nz(T1, main);
    b.atom_exch(T0, R_DONE, Operand::Imm(1), MemSem::Relaxed);
    b.jmp_to(main);
}

/// Build the UTS kernel (single global queue).
pub fn build_centralized(cfg: &UtsConfig) -> Program {
    cfg.validate();
    let mut b = ProgramBuilder::new("uts");
    let main = b.label();
    let exit_l = b.label();
    let have = b.label();
    let push = b.label();
    let counters = b.label();

    b.ldi(R_MASK, SEED_MASK);
    b.bind(main);
    b.ld_global(T0, R_DONE, 0);
    b.bra_nz(T0, exit_l);
    // Acquire the global lock (spin on CAS).
    let acq = b.here();
    b.atom_cas(T2, R_LOCK, Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
    b.bra_nz(T2, acq);
    b.ld_global(T0, R_HEAD, 0);
    b.ld_global(T1, R_TAIL, 0);
    b.sne(T2, T0, T1);
    b.bra_nz(T2, have);
    // Empty: release and retry.
    b.atom_store(R_LOCK, Operand::Imm(0), MemSem::Release);
    b.jmp_to(main);
    b.bind(have);
    b.shl(R_ADDR, T0, Operand::Imm(3));
    b.add(R_ADDR, R_ADDR, R_QBASE);
    b.ld_global(R_NODE, R_ADDR, 0);
    b.addi(T0, T0, 1);
    b.st_global(T0, R_HEAD, 0);
    b.atom_store(R_LOCK, Operand::Imm(0), MemSem::Release);

    emit_decode_and_count(&mut b, cfg, push, counters);

    b.bind(push);
    // Re-acquire the lock and push all children.
    let acq2 = b.here();
    b.atom_cas(T2, R_LOCK, Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
    b.bra_nz(T2, acq2);
    b.ld_global(T1, R_TAIL, 0);
    b.ldi(R_I, 0);
    let child_loop = b.here();
    emit_make_child(&mut b);
    b.shl(R_ADDR, T1, Operand::Imm(3));
    b.add(R_ADDR, R_ADDR, R_QBASE);
    b.st_global(T4, R_ADDR, 0);
    b.addi(T1, T1, 1);
    b.addi(R_I, R_I, 1);
    b.sltu(T0, R_I, R_C);
    b.bra_nz(T0, child_loop);
    b.st_global(T1, R_TAIL, 0);
    b.atom_store(R_LOCK, Operand::Imm(0), MemSem::Release);

    b.bind(counters);
    emit_counters(&mut b, main);
    b.bind(exit_l);
    b.exit();
    b.build().expect("uts kernel assembles")
}

/// Build the UTSD kernel (per-SM local queues with global overflow).
pub fn build_decentralized(cfg: &UtsConfig) -> Program {
    cfg.validate();
    let mut b = ProgramBuilder::new("utsd");
    let main = b.label();
    let exit_l = b.label();
    let lhave = b.label();
    let ghave = b.label();
    let process = b.label();
    let push = b.label();
    let spill = b.label();
    let counters = b.label();

    b.ldi(R_MASK, SEED_MASK);
    b.ldi(R_LMASK, cfg.local_cap - 1);
    b.ldi(R_LCAP, cfg.local_cap);
    b.bind(main);
    b.ld_global(T0, R_DONE, 0);
    b.bra_nz(T0, exit_l);
    // Local pop attempt (spin: contention is intra-SM only).
    let lacq = b.here();
    b.atom_cas(T2, R_LLOCK, Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
    b.bra_nz(T2, lacq);
    b.ld_global(T0, R_LHEAD, 0);
    b.ld_global(T1, R_LTAIL, 0);
    b.sne(T2, T0, T1);
    b.bra_nz(T2, lhave);
    b.atom_store(R_LLOCK, Operand::Imm(0), MemSem::Release);
    // Global pop attempt (try once, then back to the main loop).
    b.atom_cas(T2, R_LOCK, Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
    b.bra_nz(T2, main);
    b.ld_global(T0, R_HEAD, 0);
    b.ld_global(T1, R_TAIL, 0);
    b.sne(T2, T0, T1);
    b.bra_nz(T2, ghave);
    b.atom_store(R_LOCK, Operand::Imm(0), MemSem::Release);
    b.jmp_to(main);
    b.bind(ghave);
    b.shl(R_ADDR, T0, Operand::Imm(3));
    b.add(R_ADDR, R_ADDR, R_QBASE);
    b.ld_global(R_NODE, R_ADDR, 0);
    b.addi(T0, T0, 1);
    b.st_global(T0, R_HEAD, 0);
    b.atom_store(R_LOCK, Operand::Imm(0), MemSem::Release);
    b.jmp_to(process);
    b.bind(lhave);
    b.and(R_ADDR, T0, R_LMASK);
    b.shl(R_ADDR, R_ADDR, Operand::Imm(3));
    b.add(R_ADDR, R_ADDR, R_LQBASE);
    b.ld_global(R_NODE, R_ADDR, 0);
    b.addi(T0, T0, 1);
    b.st_global(T0, R_LHEAD, 0);
    b.atom_store(R_LLOCK, Operand::Imm(0), MemSem::Release);
    b.bind(process);

    emit_decode_and_count(&mut b, cfg, push, counters);

    b.bind(push);
    // Push local if the whole batch fits, else spill everything global.
    let lacq2 = b.here();
    b.atom_cas(T2, R_LLOCK, Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
    b.bra_nz(T2, lacq2);
    b.ld_global(T0, R_LHEAD, 0);
    b.ld_global(T1, R_LTAIL, 0);
    b.sub(T2, T1, T0);
    b.add(T2, T2, R_C);
    b.sltu(T3, R_LCAP, T2); // overflow if cap < count + c
    b.bra_nz(T3, spill);
    b.ldi(R_I, 0);
    let lchild = b.here();
    emit_make_child(&mut b);
    b.and(R_ADDR, T1, R_LMASK);
    b.shl(R_ADDR, R_ADDR, Operand::Imm(3));
    b.add(R_ADDR, R_ADDR, R_LQBASE);
    b.st_global(T4, R_ADDR, 0);
    b.addi(T1, T1, 1);
    b.addi(R_I, R_I, 1);
    b.sltu(T2, R_I, R_C);
    b.bra_nz(T2, lchild);
    b.st_global(T1, R_LTAIL, 0);
    b.atom_store(R_LLOCK, Operand::Imm(0), MemSem::Release);
    b.jmp_to(counters);
    b.bind(spill);
    b.atom_store(R_LLOCK, Operand::Imm(0), MemSem::Release);
    let gacq = b.here();
    b.atom_cas(T2, R_LOCK, Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
    b.bra_nz(T2, gacq);
    b.ld_global(T1, R_TAIL, 0);
    b.ldi(R_I, 0);
    let gchild = b.here();
    emit_make_child(&mut b);
    b.shl(R_ADDR, T1, Operand::Imm(3));
    b.add(R_ADDR, R_ADDR, R_QBASE);
    b.st_global(T4, R_ADDR, 0);
    b.addi(T1, T1, 1);
    b.addi(R_I, R_I, 1);
    b.sltu(T2, R_I, R_C);
    b.bra_nz(T2, gchild);
    b.st_global(T1, R_TAIL, 0);
    b.atom_store(R_LOCK, Operand::Imm(0), MemSem::Release);

    b.bind(counters);
    emit_counters(&mut b, main);
    b.bind(exit_l);
    b.exit();
    b.build().expect("utsd kernel assembles")
}

/// Initialize global memory: the root node in the global queue and the
/// `remaining` counter at 1.
pub fn init_memory(sim: &mut Simulator, cfg: &UtsConfig, lay: &UtsLayout) {
    let g = sim.gmem_mut();
    let root = cfg.root_seed & SEED_MASK; // depth 0
    g.write_word(lay.queue(), root);
    g.write_word(lay.head(), 0);
    g.write_word(lay.tail(), 1);
    g.write_word(lay.remaining(), 1);
    g.write_word(lay.done(), 0);
    g.write_word(lay.processed(), 0);
    g.write_word(lay.lock(), 0);
}

/// Build the launch for `variant`.
pub fn launch_spec(cfg: &UtsConfig, lay: UtsLayout, variant: Variant) -> LaunchSpec {
    let program = match variant {
        Variant::Centralized => build_centralized(cfg),
        Variant::Decentralized => build_decentralized(cfg),
    };
    LaunchSpec::new(program, cfg.grid_blocks, cfg.warps_per_block).with_init(
        move |w, _block, _warp, ctx| {
            w.set_uniform(R_LOCK.0, lay.lock());
            w.set_uniform(R_HEAD.0, lay.head());
            w.set_uniform(R_TAIL.0, lay.tail());
            w.set_uniform(R_REMAIN.0, lay.remaining());
            w.set_uniform(R_DONE.0, lay.done());
            w.set_uniform(R_QBASE.0, lay.queue());
            w.set_uniform(R_PROC.0, lay.processed());
            if matches!(variant, Variant::Decentralized) {
                w.set_uniform(R_LLOCK.0, lay.local_lock(ctx.sm));
                w.set_uniform(R_LHEAD.0, lay.local_head(ctx.sm));
                w.set_uniform(R_LTAIL.0, lay.local_tail(ctx.sm));
                w.set_uniform(R_LQBASE.0, lay.local_queue(ctx.sm));
            }
        },
    )
}

/// The outcome of a verified UTS/UTSD execution.
#[derive(Debug, Clone)]
pub struct UtsRun {
    /// The kernel execution record.
    pub run: KernelRun,
    /// Nodes the GPU processed.
    pub processed: u64,
    /// Nodes the host reference says exist.
    pub expected: u64,
}

/// Run `variant` on `sim` and verify every tree node was processed exactly
/// once.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if the functional result is wrong (a simulator correctness bug).
pub fn run(sim: &mut Simulator, cfg: &UtsConfig, variant: Variant) -> Result<UtsRun, SimError> {
    let lay = UtsLayout::new(cfg);
    init_memory(sim, cfg, &lay);
    let spec = launch_spec(cfg, lay, variant);
    let run = sim.run_kernel(&spec)?;
    let processed = sim.gmem().read_word(lay.processed());
    let expected = expected_nodes(cfg);
    assert_eq!(processed, expected, "UTS processed a wrong number of nodes ({variant:?})");
    assert_eq!(sim.gmem().read_word(lay.remaining()), 0, "remaining must drain");
    assert_eq!(sim.gmem().read_word(lay.done()), 1, "done must be set");
    assert_eq!(sim.gmem().read_word(lay.lock()), 0, "global lock must be free");
    Ok(UtsRun { run, processed, expected })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_core::StallKind;
    use gsi_mem::Protocol;
    use gsi_sim::SystemConfig;

    fn sim(cores: usize, protocol: Protocol) -> Simulator {
        Simulator::new(SystemConfig::paper().with_gpu_cores(cores).with_protocol(protocol))
    }

    #[test]
    fn reference_tree_is_deterministic_and_bounded() {
        let cfg = UtsConfig::small();
        let n = expected_nodes(&cfg);
        assert!(n > cfg.root_children);
        // Depth cap bounds the tree: every node has at most `branch`
        // children over at most `max_depth` levels below the root's fanout.
        let bound = 1 + cfg.root_children * (cfg.branch + 1).pow(cfg.max_depth as u32);
        assert!(n < bound);
    }

    #[test]
    fn kernels_assemble() {
        let cfg = UtsConfig::paper();
        let p1 = build_centralized(&cfg);
        let p2 = build_decentralized(&cfg);
        assert!(p1.len() > 30);
        assert!(p2.len() > p1.len(), "UTSD has the extra local-queue paths");
    }

    #[test]
    fn uts_small_runs_and_verifies_gpu_coherence() {
        let cfg = UtsConfig::small();
        let mut s = sim(4, Protocol::GpuCoherence);
        let out = run(&mut s, &cfg, Variant::Centralized).unwrap();
        assert_eq!(out.processed, out.expected);
        // Lock contention must dominate: synchronization is the largest
        // stall class (Figure 6.1a's shape).
        let bd = &out.run.breakdown;
        let sync = bd.cycles(StallKind::Synchronization);
        for k in [StallKind::MemoryData, StallKind::MemoryStructural, StallKind::ComputeData] {
            assert!(sync > bd.cycles(k), "sync should dominate {k}: {bd:?}");
        }
    }

    #[test]
    fn uts_small_runs_and_verifies_denovo() {
        let cfg = UtsConfig::small();
        let mut s = sim(4, Protocol::DeNovo);
        let out = run(&mut s, &cfg, Variant::Centralized).unwrap();
        assert_eq!(out.processed, out.expected);
    }

    #[test]
    fn utsd_small_runs_and_verifies_both_protocols() {
        let cfg = UtsConfig::small();
        for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
            let mut s = sim(4, protocol);
            let out = run(&mut s, &cfg, Variant::Decentralized).unwrap();
            assert_eq!(out.processed, out.expected, "{protocol}");
        }
    }

    #[test]
    fn utsd_is_faster_than_uts() {
        let cfg = UtsConfig::small();
        let mut s1 = sim(4, Protocol::GpuCoherence);
        let uts = run(&mut s1, &cfg, Variant::Centralized).unwrap();
        let mut s2 = sim(4, Protocol::GpuCoherence);
        let utsd = run(&mut s2, &cfg, Variant::Decentralized).unwrap();
        assert!(
            utsd.run.cycles < uts.run.cycles,
            "decentralized queues must cut execution time: {} vs {}",
            utsd.run.cycles,
            uts.run.cycles
        );
    }

    #[test]
    #[should_panic(expected = "supercritical")]
    fn supercritical_tree_rejected() {
        let cfg = UtsConfig { q_per_mille: 600, branch: 2, ..UtsConfig::small() };
        build_centralized(&cfg);
    }
}
