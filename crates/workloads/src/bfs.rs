//! Level-synchronous breadth-first search — the irregular graph workload
//! family (Pannotia, Burtscher et al.) the paper's introduction and related
//! work cite as the motivation for tightly coupled GPUs.
//!
//! The graph is a deterministic pseudo-random digraph with fixed out-degree
//! (ELL adjacency, seeded by splitmix64). Each BFS level is one kernel
//! launch: warp-workers walk the current frontier, CAS-claim unvisited
//! neighbours (`INF -> level+1`), and append them to the next frontier with
//! a fetch-add cursor. The host loop relaunches until the frontier is
//! empty, exercising multi-kernel coherence (launch acquires, exit
//! releases) and atomics in one workload.

use crate::hash::splitmix64;
use gsi_isa::{MemSem, Operand, Program, ProgramBuilder, Reg};
use gsi_sim::{KernelRun, LaunchSpec, SimError, Simulator};

/// "Unvisited" distance marker.
pub const INF: u64 = u64::MAX;

/// Workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsConfig {
    /// Vertices.
    pub vertices: u64,
    /// Out-degree of every vertex.
    pub degree: u64,
    /// Source vertex.
    pub source: u64,
    /// Worker warps per block.
    pub warps_per_block: usize,
    /// Blocks in the grid (workers = blocks * warps).
    pub grid_blocks: u64,
    /// Seed fixing the edges.
    pub seed: u64,
}

impl BfsConfig {
    /// A medium graph.
    pub fn medium() -> Self {
        BfsConfig {
            vertices: 4096,
            degree: 4,
            source: 0,
            warps_per_block: 4,
            grid_blocks: 8,
            seed: 0xB4B4,
        }
    }

    /// A small graph for tests.
    pub fn small() -> Self {
        BfsConfig {
            vertices: 512,
            degree: 3,
            source: 0,
            warps_per_block: 2,
            grid_blocks: 4,
            seed: 0xB4B4,
        }
    }

    /// Total worker warps.
    pub fn workers(&self) -> u64 {
        self.grid_blocks * self.warps_per_block as u64
    }

    fn validate(&self) {
        assert!(self.vertices > 0 && self.degree > 0, "empty graph");
        assert!(self.source < self.vertices, "source out of range");
    }
}

/// Neighbour `k` of vertex `v`.
pub fn neighbor(cfg: &BfsConfig, v: u64, k: u64) -> u64 {
    splitmix64(cfg.seed ^ (v * cfg.degree + k).wrapping_mul(0x9E37)) % cfg.vertices
}

/// Host reference: BFS distances (`INF` for unreachable vertices).
pub fn expected_distances(cfg: &BfsConfig) -> Vec<u64> {
    let mut dist = vec![INF; cfg.vertices as usize];
    let mut frontier = vec![cfg.source];
    dist[cfg.source as usize] = 0;
    let mut level = 0u64;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for k in 0..cfg.degree {
                let u = neighbor(cfg, v, k) as usize;
                if dist[u] == INF {
                    dist[u] = level + 1;
                    next.push(u as u64);
                }
            }
        }
        frontier = next;
        level += 1;
    }
    dist
}

/// Memory layout.
#[derive(Debug, Clone, Copy)]
pub struct BfsLayout {
    /// Adjacency plane base (`adj[k * V + v]`).
    pub adj: u64,
    /// Distance array base.
    pub dist: u64,
    /// Frontier buffer A base.
    pub frontier_a: u64,
    /// Frontier buffer B base.
    pub frontier_b: u64,
    /// Current frontier length (one word).
    pub cur_len: u64,
    /// Next-frontier cursor (one word).
    pub next_len: u64,
}

impl BfsLayout {
    /// Lay out the structures for `cfg`.
    pub fn new(cfg: &BfsConfig) -> Self {
        let base = 0x120_0000u64;
        let v = cfg.vertices;
        BfsLayout {
            adj: base,
            dist: base + v * cfg.degree * 8,
            frontier_a: base + v * (cfg.degree + 1) * 8,
            frontier_b: base + v * (cfg.degree + 2) * 8,
            cur_len: base + v * (cfg.degree + 3) * 8,
            next_len: base + v * (cfg.degree + 3) * 8 + 64,
        }
    }
}

// Registers (uniform per warp unless noted):
const R_WORKER: Reg = Reg(1); // worker id
const R_NWORK: Reg = Reg(2); // total workers
const R_ADJ: Reg = Reg(3);
const R_DIST: Reg = Reg(4);
const R_CUR: Reg = Reg(5); // current frontier base
const R_NEXT: Reg = Reg(6); // next frontier base
const R_CURLEN: Reg = Reg(7); // address of current length
const R_NEXTLEN: Reg = Reg(8); // address of next cursor
const R_LEVEL: Reg = Reg(9); // level + 1 (the distance to assign)
const R_I: Reg = Reg(10); // frontier index
const R_LEN: Reg = Reg(11);
const R_V: Reg = Reg(12);
const R_K: Reg = Reg(13);
const R_U: Reg = Reg(14);
const R_T: Reg = Reg(15);
const R_OLD: Reg = Reg(16);
const R_IDX: Reg = Reg(17);
const R_VSTRIDE: Reg = Reg(18); // vertices * 8

/// Build the per-level BFS kernel.
pub fn build_program(cfg: &BfsConfig) -> Program {
    cfg.validate();
    let mut b = ProgramBuilder::new("bfs-level");
    let done = b.label();
    let next_i = b.label();
    let next_k = b.label();
    b.ld_global(R_LEN, R_CURLEN, 0);
    b.ldi(R_VSTRIDE, cfg.vertices * 8);
    b.mov(R_I, R_WORKER);
    let outer = b.here();
    // while i < len
    b.sltu(R_T, R_I, R_LEN);
    b.bra_z(R_T, done);
    // v = frontier[i]
    b.shl(R_T, R_I, Operand::Imm(3));
    b.add(R_T, R_T, R_CUR);
    b.ld_global(R_V, R_T, 0);
    b.ldi(R_K, 0);
    let edges = b.here();
    // u = adj[k * V + v]
    b.mul(R_T, R_K, R_VSTRIDE);
    b.add(R_T, R_T, R_ADJ);
    b.shl(R_U, R_V, Operand::Imm(3));
    b.add(R_T, R_T, R_U);
    b.ld_global(R_U, R_T, 0);
    // claim: CAS dist[u] INF -> level+1
    b.shl(R_T, R_U, Operand::Imm(3));
    b.add(R_T, R_T, R_DIST);
    b.atom_cas(R_OLD, R_T, Operand::Imm(-1), R_LEVEL, MemSem::Relaxed);
    b.addi(R_OLD, R_OLD, 1); // INF wraps to 0 iff we won
    b.bra_nz(R_OLD, next_k);
    // won: next_frontier[atomicAdd(next_len, 1)] = u
    b.atom_add(R_IDX, R_NEXTLEN, Operand::Imm(1), MemSem::Relaxed);
    b.shl(R_IDX, R_IDX, Operand::Imm(3));
    b.add(R_IDX, R_IDX, R_NEXT);
    b.st_global(R_U, R_IDX, 0);
    b.bind(next_k);
    b.addi(R_K, R_K, 1);
    b.sltu(R_T, R_K, Operand::Imm(cfg.degree as i64));
    b.bra_nz(R_T, edges);
    b.bind(next_i);
    b.add(R_I, R_I, R_NWORK);
    b.jmp_to(outer);
    b.bind(done);
    b.exit();
    b.build().expect("bfs assembles")
}

/// Initialize adjacency, distances, and the level-0 frontier.
pub fn init_memory(sim: &mut Simulator, cfg: &BfsConfig, lay: &BfsLayout) {
    let g = sim.gmem_mut();
    for k in 0..cfg.degree {
        for v in 0..cfg.vertices {
            g.write_word(lay.adj + (k * cfg.vertices + v) * 8, neighbor(cfg, v, k));
        }
    }
    for v in 0..cfg.vertices {
        g.write_word(lay.dist + v * 8, INF);
    }
    g.write_word(lay.dist + cfg.source * 8, 0);
    g.write_word(lay.frontier_a, cfg.source);
    g.write_word(lay.cur_len, 1);
    g.write_word(lay.next_len, 0);
}

/// The outcome of a verified BFS.
#[derive(Debug, Clone)]
pub struct BfsRun {
    /// One kernel run per BFS level.
    pub levels: Vec<KernelRun>,
    /// Vertices reached (distance != INF).
    pub reached: u64,
}

/// Build the launch for one BFS level: the frontier buffers ping-pong on
/// the level's parity, and `r18` carries `level + 1` (the distance CAS'd
/// into newly claimed vertices).
pub fn launch_spec(cfg: &BfsConfig, lay: &BfsLayout, level: u64) -> LaunchSpec {
    let program = build_program(cfg);
    let workers = cfg.workers();
    let warps = cfg.warps_per_block as u64;
    let lay = *lay;
    let (cur, next) = if level.is_multiple_of(2) {
        (lay.frontier_a, lay.frontier_b)
    } else {
        (lay.frontier_b, lay.frontier_a)
    };
    LaunchSpec::new(program, cfg.grid_blocks, cfg.warps_per_block).with_init(
        move |w, block, warp, _ctx| {
            w.set_uniform(R_WORKER.0, block * warps + warp as u64);
            w.set_uniform(R_NWORK.0, workers);
            w.set_uniform(R_ADJ.0, lay.adj);
            w.set_uniform(R_DIST.0, lay.dist);
            w.set_uniform(R_CUR.0, cur);
            w.set_uniform(R_NEXT.0, next);
            w.set_uniform(R_CURLEN.0, lay.cur_len);
            w.set_uniform(R_NEXTLEN.0, lay.next_len);
            w.set_uniform(R_LEVEL.0, level + 1);
        },
    )
}

/// Run BFS to completion (one kernel per level) and verify every distance.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if any distance disagrees with the host reference.
pub fn run(sim: &mut Simulator, cfg: &BfsConfig) -> Result<BfsRun, SimError> {
    let lay = BfsLayout::new(cfg);
    init_memory(sim, cfg, &lay);
    let mut levels = Vec::new();
    let mut level = 0u64;
    loop {
        let spec = launch_spec(cfg, &lay, level);
        levels.push(sim.run_kernel(&spec)?);
        // The host reads the produced frontier size and prepares the next
        // level (the CPU-side loop of level-synchronous BFS).
        let produced = sim.gmem().read_word(lay.next_len);
        if produced == 0 {
            break;
        }
        sim.gmem_mut().write_word(lay.cur_len, produced);
        sim.gmem_mut().write_word(lay.next_len, 0);
        level += 1;
        assert!(level <= cfg.vertices, "BFS cannot have more levels than vertices");
    }
    let want = expected_distances(cfg);
    let mut reached = 0;
    for v in 0..cfg.vertices {
        let got = sim.gmem().read_word(lay.dist + v * 8);
        assert_eq!(got, want[v as usize], "distance of vertex {v} wrong");
        if got != INF {
            reached += 1;
        }
    }
    Ok(BfsRun { levels, reached })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_core::StallKind;
    use gsi_sim::SystemConfig;

    #[test]
    fn reference_bfs_reaches_from_source() {
        let cfg = BfsConfig::small();
        let d = expected_distances(&cfg);
        assert_eq!(d[cfg.source as usize], 0);
        // A random graph with degree 3 on 512 vertices is almost surely
        // well-connected from the source.
        let reached = d.iter().filter(|&&x| x != INF).count();
        assert!(reached > 400, "only {reached} reached");
    }

    #[test]
    fn runs_and_verifies() {
        let cfg = BfsConfig::small();
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = run(&mut sim, &cfg).unwrap();
        assert!(out.levels.len() >= 3, "several BFS levels expected");
        assert!(out.reached > 400);
    }

    #[test]
    fn verifies_under_denovo_and_owned_atomics() {
        let cfg = BfsConfig::small();
        let sys = SystemConfig::paper()
            .with_gpu_cores(4)
            .with_protocol(gsi_mem::Protocol::DeNovo)
            .with_owned_atomics(true);
        let mut sim = Simulator::new(sys);
        run(&mut sim, &cfg).unwrap();
    }

    #[test]
    fn irregular_traversal_is_memory_bound() {
        let cfg = BfsConfig::small();
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = run(&mut sim, &cfg).unwrap();
        let total: gsi_core::StallBreakdown = out.levels.iter().map(|r| &r.breakdown).sum();
        assert!(
            total.cycles(StallKind::MemoryData) > total.cycles(StallKind::ComputeData),
            "{total:?}"
        );
    }
}
