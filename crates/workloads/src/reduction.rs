//! Parallel sum reduction: block-level tree reduction in the scratchpad
//! (barrier per level), then one atomic add of each block's partial sum
//! into the global total. Exercises barriers, predicated lockstep execution
//! (no divergence), scratchpad reuse, and a final atomics hot spot.

use crate::hash::splitmix64;
use gsi_isa::{MemSem, Operand, Program, ProgramBuilder, Reg, WARP_LANES};
use gsi_sim::{KernelRun, LaunchSpec, SimError, Simulator};

/// Workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionConfig {
    /// Input elements (one per thread).
    pub elems: u64,
    /// Warps per block; the block reduces `warps * 32` elements.
    pub warps_per_block: usize,
    /// Seed fixing the input.
    pub seed: u64,
}

impl ReductionConfig {
    /// A medium instance.
    pub fn medium() -> Self {
        ReductionConfig { elems: 16 * 1024, warps_per_block: 4, seed: 0xADD }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        ReductionConfig { elems: 2048, warps_per_block: 2, seed: 0xADD }
    }

    /// Threads per block.
    pub fn block_threads(&self) -> u64 {
        (self.warps_per_block * WARP_LANES) as u64
    }

    /// Blocks in the grid.
    pub fn grid_blocks(&self) -> u64 {
        self.elems.div_ceil(self.block_threads())
    }

    fn validate(&self) {
        assert!(self.elems > 0, "empty reduction");
        assert_eq!(self.elems % self.block_threads(), 0, "whole blocks only");
        assert!(self.block_threads().is_power_of_two(), "tree reduction needs a power of two");
    }
}

/// Memory layout.
#[derive(Debug, Clone, Copy)]
pub struct ReductionLayout {
    /// Input array base.
    pub input: u64,
    /// The global total (one word).
    pub total: u64,
}

impl ReductionLayout {
    /// Lay out the arrays for `cfg`.
    pub fn new(cfg: &ReductionConfig) -> Self {
        let base = 0xE0_0000u64;
        ReductionLayout { input: base, total: base + cfg.elems * 8 }
    }
}

/// Input element `i`.
pub fn input_of(cfg: &ReductionConfig, i: u64) -> u64 {
    splitmix64(cfg.seed ^ i) & 0xFFFF_FFFF // keep sums comfortably in range
}

/// Host reference: the wrapping sum of all inputs.
pub fn expected_total(cfg: &ReductionConfig) -> u64 {
    (0..cfg.elems).fold(0u64, |acc, i| acc.wrapping_add(input_of(cfg, i)))
}

// Registers: r0 = tid (per lane), r1 = block input base, r2 = total addr,
// r3 = slot scratch base, r4 = warp id (uniform).
const R_TID: Reg = Reg(0);
const R_IN: Reg = Reg(1);
const R_TOTAL: Reg = Reg(2);
const R_LBASE: Reg = Reg(3);
const R_WARP: Reg = Reg(4);
const R_GA: Reg = Reg(5);
const R_LA: Reg = Reg(6);
const R_V: Reg = Reg(7);
const R_P: Reg = Reg(8); // participation predicate
const R_PART: Reg = Reg(9); // partner value
const R_T: Reg = Reg(10);
const R_OLD: Reg = Reg(11);

/// Build the reduction kernel.
pub fn build_program(cfg: &ReductionConfig) -> Program {
    cfg.validate();
    let threads = cfg.block_threads();
    let mut b = ProgramBuilder::new("reduction");
    // Load my element into the tile.
    b.shl(R_GA, R_TID, Operand::Imm(3));
    b.add(R_GA, R_GA, R_IN);
    b.shl(R_LA, R_TID, Operand::Imm(3));
    b.add(R_LA, R_LA, R_LBASE);
    b.ld_global(R_V, R_GA, 0);
    b.st_local(R_V, R_LA, 0);
    b.bar();
    // Tree: for stride s = threads/2 .. 1: tile[tid] += tile[tid + s]
    // for tid < s. Lanes outside the active half execute the same
    // instructions but write their own value back unchanged (Sel keeps the
    // warp in lockstep: no divergent branches).
    let mut s = threads / 2;
    while s >= 1 {
        // partner = tile[tid + s] if tid < s else tile[tid] (safe address)
        b.sltu(R_P, R_TID, Operand::Imm(s as i64));
        b.sel(R_T, R_P, Operand::Imm((s * 8) as i64), Operand::Imm(0));
        b.add(R_T, R_T, R_LA);
        b.ld_local(R_PART, R_T, 0);
        b.ld_local(R_V, R_LA, 0);
        // new = tid < s ? v + partner : v   (lanes >= s add 0)
        b.sel(R_PART, R_P, R_PART, Operand::Imm(0));
        b.add(R_V, R_V, R_PART);
        b.st_local(R_V, R_LA, 0);
        b.bar();
        s /= 2;
    }
    // Warp 0 publishes the block sum: one atomic add per block.
    let skip = b.label();
    b.bra_nz(R_WARP, skip);
    b.ld_local(R_V, R_LBASE, 0);
    b.atom_add(R_OLD, R_TOTAL, R_V, MemSem::Relaxed);
    b.bind(skip);
    b.exit();
    b.build().expect("reduction assembles")
}

/// Initialize the input and zero the total.
pub fn init_memory(sim: &mut Simulator, cfg: &ReductionConfig, lay: &ReductionLayout) {
    let g = sim.gmem_mut();
    for i in 0..cfg.elems {
        g.write_word(lay.input + i * 8, input_of(cfg, i));
    }
    g.write_word(lay.total, 0);
}

/// Build the launch.
pub fn launch_spec(cfg: &ReductionConfig, lay: ReductionLayout) -> LaunchSpec {
    let program = build_program(cfg);
    let threads = cfg.block_threads();
    let slot_bytes = (threads * 8).next_multiple_of(64);
    LaunchSpec::new(program, cfg.grid_blocks(), cfg.warps_per_block).with_init(
        move |w, block, warp, ctx| {
            w.set_per_lane(R_TID.0, move |lane| (warp * WARP_LANES + lane) as u64);
            w.set_uniform(R_IN.0, lay.input + block * threads * 8);
            w.set_uniform(R_TOTAL.0, lay.total);
            w.set_uniform(R_LBASE.0, ctx.slot as u64 * slot_bytes);
            w.set_uniform(R_WARP.0, warp as u64);
        },
    )
}

/// The outcome of a verified reduction run.
#[derive(Debug, Clone)]
pub struct ReductionRun {
    /// The kernel execution record.
    pub run: KernelRun,
    /// The reduced total.
    pub total: u64,
}

/// Run the reduction on `sim` and verify the total.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if the total disagrees with the host reference, or if the tiles
/// of resident blocks would overflow the scratchpad.
pub fn run(sim: &mut Simulator, cfg: &ReductionConfig) -> Result<ReductionRun, SimError> {
    let slot_bytes = (cfg.block_threads() * 8).next_multiple_of(64);
    assert!(
        slot_bytes * sim.config().sm.max_blocks as u64 <= sim.config().mem.scratch_bytes,
        "tiles of resident blocks must fit in the scratchpad"
    );
    let lay = ReductionLayout::new(cfg);
    init_memory(sim, cfg, &lay);
    let spec = launch_spec(cfg, lay);
    let run = sim.run_kernel(&spec)?;
    let total = sim.gmem().read_word(lay.total);
    assert_eq!(total, expected_total(cfg), "reduction total wrong");
    Ok(ReductionRun { run, total })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_core::StallKind;
    use gsi_sim::SystemConfig;

    #[test]
    fn runs_and_verifies() {
        let cfg = ReductionConfig::small();
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = run(&mut sim, &cfg).unwrap();
        assert_eq!(out.total, expected_total(&cfg));
    }

    #[test]
    fn barriers_show_up_as_synchronization_stalls() {
        let cfg = ReductionConfig::small();
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = run(&mut sim, &cfg).unwrap();
        assert!(
            out.run.breakdown.cycles(StallKind::Synchronization) > 0,
            "{:?}",
            out.run.breakdown
        );
        let barriers: u64 = out.run.sm_stats.iter().map(|s| s.barriers).sum();
        // One barrier after the tile load plus one per tree level, per warp.
        let levels = cfg.block_threads().trailing_zeros() as u64;
        let warps = cfg.grid_blocks() * cfg.warps_per_block as u64;
        assert_eq!(barriers, warps * (levels + 1));
    }

    #[test]
    fn single_warp_blocks_also_reduce() {
        let cfg = ReductionConfig { elems: 256, warps_per_block: 1, seed: 3 };
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
        let out = run(&mut sim, &cfg).unwrap();
        assert_eq!(out.total, expected_total(&cfg));
    }

    #[test]
    fn verifies_on_one_sm_and_many() {
        for cores in [1usize, 8] {
            let cfg = ReductionConfig::small();
            let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(cores));
            run(&mut sim, &cfg).unwrap();
        }
    }
}
