//! The mesh topology, XY routing, and link-contention timing model.

use crate::stats::NocStats;
use gsi_chaos::ChaosEngine;
use gsi_trace::{NullSink, TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// A node of the mesh, identified by its index in row-major order
/// (`id = y * width + x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u8);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl gsi_json::ToJson for NodeId {
    fn to_json(&self) -> gsi_json::Value {
        gsi_json::Value::U64(u64::from(self.0))
    }
}

impl gsi_json::FromJson for NodeId {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        u8::from_json(v).map(NodeId)
    }
}

/// Mesh geometry and per-hop timing parameters.
///
/// The defaults model the paper's 4×4 mesh: a 2-cycle router traversal and a
/// 1-cycle link traversal per hop, 16-byte flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh width (columns).
    pub width: u8,
    /// Mesh height (rows).
    pub height: u8,
    /// Cycles spent in each router on the path.
    pub router_delay: u64,
    /// Cycles spent on each link on the path.
    pub link_delay: u64,
    /// Flit size; a message occupies each link for
    /// `ceil(size_bytes / flit_bytes)` cycles.
    pub flit_bytes: u32,
    /// Latency of a message whose source and destination are the same node
    /// (e.g. an SM talking to its co-located L2 bank).
    pub local_delay: u64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 4,
            height: 4,
            router_delay: 2,
            link_delay: 1,
            flit_bytes: 16,
            local_delay: 2,
        }
    }
}

impl MeshConfig {
    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// `(x, y)` coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for this mesh.
    pub fn coords(&self, n: NodeId) -> (u8, u8) {
        assert!((n.0 as usize) < self.nodes(), "{n} out of range for mesh");
        (n.0 % self.width, n.0 / self.width)
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// Zero-load latency between two nodes for a message of `size_bytes`:
    /// the delivery latency when no other traffic contends for links.
    pub fn zero_load_latency(&self, a: NodeId, b: NodeId, size_bytes: u32) -> u64 {
        let hops = self.hops(a, b);
        if hops == 0 {
            return self.local_delay;
        }
        let ser = self.serialization_cycles(size_bytes);
        hops * (self.router_delay + self.link_delay) + self.router_delay + ser
    }

    /// Cycles a message of `size_bytes` occupies each link.
    pub fn serialization_cycles(&self, size_bytes: u32) -> u64 {
        u64::from(size_bytes.div_ceil(self.flit_bytes)).max(1)
    }
}

gsi_json::json_struct!(MeshConfig {
    width,
    height,
    router_delay,
    link_delay,
    flit_bytes,
    local_delay,
});

/// Directions of the four links leaving each node.
const DIR_E: usize = 0;
const DIR_W: usize = 1;
const DIR_N: usize = 2;
const DIR_S: usize = 3;

#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight<T> {
    deliver_at: u64,
    seq: u64,
    dst: NodeId,
    payload: T,
}

impl<T: Eq> Ord for InFlight<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl<T: Eq> PartialOrd for InFlight<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The mesh interconnect carrying payloads of type `T`.
///
/// `send` computes the delivery time of a message given current link
/// occupancy and reserves the links; `deliver` returns every message whose
/// delivery time has been reached. Delivery order is deterministic:
/// by delivery cycle, then by send order.
#[derive(Debug, Clone)]
pub struct Mesh<T: Eq> {
    cfg: MeshConfig,
    /// `links[node * 4 + dir]` = first cycle the link is free.
    link_free: Vec<u64>,
    in_flight: BinaryHeap<Reverse<InFlight<T>>>,
    seq: u64,
    stats: NocStats,
    chaos: ChaosEngine,
}

impl<T: Eq> Mesh<T> {
    /// Create a mesh with the given configuration.
    pub fn new(cfg: MeshConfig) -> Self {
        Mesh {
            link_free: vec![0; cfg.nodes() * 4],
            in_flight: BinaryHeap::new(),
            seq: 0,
            cfg,
            stats: NocStats::default(),
            chaos: ChaosEngine::disabled(),
        }
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Install a fault-injection engine. Armed engines add bounded extra
    /// delay to a deterministic subset of deliveries (which may reorder
    /// them relative to send order); the disabled default costs one branch
    /// per send.
    pub fn set_chaos(&mut self, chaos: ChaosEngine) {
        self.chaos = chaos;
    }

    /// Fault-injection counters for this mesh.
    pub fn chaos_stats(&self) -> &gsi_chaos::ChaosStats {
        self.chaos.stats()
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    fn link_index(&self, node: NodeId, dir: usize) -> usize {
        node.0 as usize * 4 + dir
    }

    /// Inject a message at cycle `now`; returns the cycle at which it will be
    /// delivered at `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send(&mut self, now: u64, src: NodeId, dst: NodeId, size_bytes: u32, payload: T) -> u64 {
        self.send_traced(now, src, dst, size_bytes, payload, &mut NullSink)
    }

    /// [`send`](Self::send) recording a [`TraceEvent::MeshSend`] plus one
    /// [`TraceEvent::MeshHop`] per reserved link (the feed behind the NoC
    /// utilization heatmap).
    pub fn send_traced<S: TraceSink>(
        &mut self,
        now: u64,
        src: NodeId,
        dst: NodeId,
        size_bytes: u32,
        payload: T,
        sink: &mut S,
    ) -> u64 {
        let (mut x, mut y) = self.cfg.coords(src);
        let (dx, dy) = self.cfg.coords(dst);
        let ser = self.cfg.serialization_cycles(size_bytes);

        let mut t = now;
        let mut hops = 0u64;
        let mut node = src;
        // XY routing: move along X first, then Y, reserving each link.
        while (x, y) != (dx, dy) {
            let dir = if x < dx {
                x += 1;
                DIR_E
            } else if x > dx {
                x -= 1;
                DIR_W
            } else if y < dy {
                y += 1;
                DIR_S
            } else {
                y -= 1;
                DIR_N
            };
            let li = self.link_index(node, dir);
            let depart = t.max(self.link_free[li]);
            let queued = depart - t;
            self.link_free[li] = depart + ser;
            t = depart + self.cfg.router_delay + self.cfg.link_delay;
            self.stats.link_queue_cycles += queued;
            if sink.counters_on() {
                sink.record(TraceEvent::MeshHop {
                    cycle: now,
                    node: node.0,
                    dir: dir as u8,
                    queued: queued.min(u64::from(u32::MAX)) as u32,
                    busy: ser.min(u64::from(u32::MAX)) as u32,
                });
            }
            hops += 1;
            node = NodeId(y * self.cfg.width + x);
        }
        let deliver_at = if hops == 0 {
            t + self.cfg.local_delay
        } else {
            // Ejection router + serialization of the payload into the
            // destination.
            t + self.cfg.router_delay + ser
        } + self.chaos.mesh_extra_delay();

        self.stats.messages += 1;
        self.stats.bytes += u64::from(size_bytes);
        self.stats.total_hops += hops;
        let latency = deliver_at - now;
        self.stats.total_latency += latency;
        self.stats.max_latency = self.stats.max_latency.max(latency);

        self.in_flight.push(Reverse(InFlight { deliver_at, seq: self.seq, dst, payload }));
        self.seq += 1;
        if sink.counters_on() {
            sink.record(TraceEvent::MeshSend {
                cycle: now,
                src: src.0,
                dst: dst.0,
                bytes: size_bytes,
                deliver_at,
            });
        }
        deliver_at
    }

    /// Remove and return every message whose delivery cycle is `<= now`,
    /// as `(destination, payload)` pairs in deterministic order.
    pub fn deliver(&mut self, now: u64) -> Vec<(NodeId, T)> {
        let mut out = Vec::new();
        self.deliver_into(now, &mut out);
        out
    }

    /// [`deliver`](Self::deliver) appending into a caller-provided buffer,
    /// so the per-cycle simulation loop can reuse one allocation. The buffer
    /// is *not* cleared: due messages are appended in the same deterministic
    /// order `deliver` returns them.
    pub fn deliver_into(&mut self, now: u64, out: &mut Vec<(NodeId, T)>) {
        self.deliver_into_traced(now, out, &mut NullSink);
    }

    /// [`deliver_into`](Self::deliver_into) recording a
    /// [`TraceEvent::MeshDeliver`] per ejected message.
    pub fn deliver_into_traced<S: TraceSink>(
        &mut self,
        now: u64,
        out: &mut Vec<(NodeId, T)>,
        sink: &mut S,
    ) {
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > now {
                break;
            }
            let Reverse(msg) = self.in_flight.pop().expect("peeked");
            if sink.counters_on() {
                sink.record(TraceEvent::MeshDeliver { cycle: now, node: msg.dst.0 });
            }
            out.push((msg.dst, msg.payload));
        }
    }

    /// Earliest delivery cycle among in-flight messages, if any. Useful for
    /// event-skipping when the system is otherwise quiescent.
    pub fn next_delivery(&self) -> Option<u64> {
        self.in_flight.peek().map(|Reverse(m)| m.deliver_at)
    }
}

impl<T: Eq + gsi_json::ToJson> Mesh<T> {
    /// Serialize the mesh's mutable state (link reservations, in-flight
    /// messages, sequence counter, stats, chaos stream) for a simulator
    /// snapshot. The configuration is not included: the owner reconstructs
    /// the mesh via [`Mesh::new`] with the same config and then applies
    /// this state. In-flight messages are written sorted by
    /// `(deliver_at, seq)` — the heap's total order — so equal meshes
    /// always snapshot to identical bytes.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::ToJson;
        let mut msgs: Vec<&InFlight<T>> = self.in_flight.iter().map(|Reverse(m)| m).collect();
        msgs.sort_by_key(|m| (m.deliver_at, m.seq));
        let msgs: Vec<gsi_json::Value> = msgs
            .into_iter()
            .map(|m| {
                gsi_json::Value::Array(vec![
                    m.deliver_at.to_json(),
                    m.seq.to_json(),
                    m.dst.to_json(),
                    m.payload.to_json(),
                ])
            })
            .collect();
        gsi_json::Value::Object(vec![
            ("link_free".to_string(), self.link_free.to_json()),
            ("seq".to_string(), self.seq.to_json()),
            ("stats".to_string(), self.stats.to_json()),
            ("in_flight".to_string(), gsi_json::Value::Array(msgs)),
            ("chaos".to_string(), self.chaos.snapshot()),
        ])
    }
}

impl<T: Eq + gsi_json::FromJson> Mesh<T> {
    /// Restore state captured by [`Mesh::snapshot`] onto a freshly
    /// constructed mesh of the same configuration (and, when chaos is
    /// armed, with the same chaos engine installed).
    ///
    /// # Errors
    ///
    /// Returns a [`gsi_json::JsonError`] on a malformed snapshot or a
    /// link-table length mismatch (the snapshot came from a different
    /// geometry).
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError};
        let link_free: Vec<u64> = v.read("link_free")?;
        if link_free.len() != self.link_free.len() {
            return Err(JsonError::new("mesh snapshot has a different geometry"));
        }
        self.link_free = link_free;
        self.seq = v.read("seq")?;
        self.stats = v.read("stats")?;
        self.in_flight.clear();
        for m in v.req("in_flight")?.as_array().ok_or_else(|| JsonError::expected("array", v))? {
            let parts = m.as_array().ok_or_else(|| JsonError::expected("array", m))?;
            if parts.len() != 4 {
                return Err(JsonError::new("in-flight entry must have 4 elements"));
            }
            self.in_flight.push(Reverse(InFlight {
                deliver_at: u64::from_json(&parts[0])?,
                seq: u64::from_json(&parts[1])?,
                dst: NodeId::from_json(&parts[2])?,
                payload: T::from_json(&parts[3])?,
            }));
        }
        self.chaos.restore(v.req("chaos")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh<u32> {
        Mesh::new(MeshConfig::default())
    }

    #[test]
    fn coords_and_hops() {
        let cfg = MeshConfig::default();
        assert_eq!(cfg.coords(NodeId(0)), (0, 0));
        assert_eq!(cfg.coords(NodeId(5)), (1, 1));
        assert_eq!(cfg.coords(NodeId(15)), (3, 3));
        assert_eq!(cfg.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(cfg.hops(NodeId(5), NodeId(5)), 0);
        assert_eq!(cfg.hops(NodeId(0), NodeId(3)), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        MeshConfig::default().coords(NodeId(16));
    }

    #[test]
    fn zero_load_latency_scales_with_hops() {
        let cfg = MeshConfig::default();
        let near = cfg.zero_load_latency(NodeId(0), NodeId(1), 8);
        let far = cfg.zero_load_latency(NodeId(0), NodeId(15), 8);
        assert!(far > near);
        // 1 hop: 1*(2+1) + 2 + 1 = 6
        assert_eq!(near, 6);
        // 6 hops: 6*3 + 2 + 1 = 21
        assert_eq!(far, 21);
    }

    #[test]
    fn local_messages_use_local_delay() {
        let mut m = mesh();
        let eta = m.send(10, NodeId(5), NodeId(5), 64, 1);
        assert_eq!(eta, 12);
    }

    #[test]
    fn delivery_matches_eta() {
        let mut m = mesh();
        let eta = m.send(0, NodeId(0), NodeId(3), 8, 42);
        assert!(m.deliver(eta - 1).is_empty());
        let got = m.deliver(eta);
        assert_eq!(got, vec![(NodeId(3), 42)]);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn larger_messages_take_longer() {
        let mut a = mesh();
        let mut b = mesh();
        let small = a.send(0, NodeId(0), NodeId(15), 8, 0);
        let big = b.send(0, NodeId(0), NodeId(15), 72, 0);
        assert!(big > small);
    }

    #[test]
    fn contention_delays_later_messages() {
        let mut m = mesh();
        // Fire 20 large messages down the same path in the same cycle.
        let mut etas = Vec::new();
        for i in 0..20 {
            etas.push(m.send(0, NodeId(0), NodeId(3), 64, i));
        }
        // ETAs must be strictly increasing: each message queues behind the
        // previous on the first link.
        for w in etas.windows(2) {
            assert!(w[1] > w[0], "expected queuing: {etas:?}");
        }
        assert!(m.stats().link_queue_cycles > 0);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut m = mesh();
        let a = m.send(0, NodeId(0), NodeId(1), 64, 0);
        let b = m.send(0, NodeId(4), NodeId(5), 64, 1);
        assert_eq!(a, b, "independent rows should not interfere");
    }

    #[test]
    fn delivery_order_is_deterministic_fifo() {
        let mut m = mesh();
        // Same src/dst/size => same path; delivery must preserve send order.
        for i in 0..5 {
            m.send(0, NodeId(0), NodeId(2), 16, i);
        }
        let got = m.deliver(u64::MAX);
        let payloads: Vec<u32> = got.into_iter().map(|(_, p)| p).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mesh();
        m.send(0, NodeId(0), NodeId(15), 8, 0);
        m.send(0, NodeId(0), NodeId(1), 8, 1);
        let s = m.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 16);
        assert_eq!(s.total_hops, 7);
        assert!(s.avg_latency() > 0.0);
    }

    #[test]
    fn deliver_into_appends_in_delivery_order() {
        let mut a = mesh();
        let mut b = mesh();
        for i in 0..6 {
            a.send(0, NodeId(0), NodeId(2), 16, i);
            b.send(0, NodeId(0), NodeId(2), 16, i);
        }
        let reference = a.deliver(u64::MAX);
        let mut buf = vec![(NodeId(9), 99)]; // existing contents survive
        b.deliver_into(u64::MAX, &mut buf);
        assert_eq!(buf[0], (NodeId(9), 99));
        assert_eq!(&buf[1..], &reference[..]);
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn next_delivery_tracks_head() {
        let mut m = mesh();
        assert_eq!(m.next_delivery(), None);
        let eta = m.send(0, NodeId(0), NodeId(1), 8, 9);
        assert_eq!(m.next_delivery(), Some(eta));
    }

    #[test]
    fn traced_send_feeds_hop_and_delivery_events() {
        use gsi_trace::{TraceBuffer, TraceConfig, TraceLevel};
        let mut m = mesh();
        let mut buf = TraceBuffer::new(TraceConfig::for_system(TraceLevel::Counters, 16, 0, 0));
        let eta = m.send_traced(0, NodeId(0), NodeId(3), 64, 7, &mut buf);
        assert_eq!(buf.count("mesh_send"), 1);
        assert_eq!(buf.count("mesh_hop"), 3, "three X hops from node 0 to node 3");
        assert!(buf.link_busy().iter().sum::<u64>() > 0, "hops feed the heatmap");
        let mut out = Vec::new();
        m.deliver_into_traced(eta, &mut out, &mut buf);
        assert_eq!(out.len(), 1);
        assert_eq!(buf.count("mesh_deliver"), 1);
    }

    #[test]
    fn chaos_delay_stretches_and_reorders_deliveries() {
        use gsi_chaos::{ChaosEngine, FaultKind, FaultParams, FaultPlan};
        let plan = FaultPlan::disabled()
            .with_seed(0xC0FFEE)
            .with(FaultKind::MeshDelay, FaultParams { per_mille: 500, max_extra: 64 });
        let mut clean = mesh();
        let mut chaotic = mesh();
        chaotic.set_chaos(ChaosEngine::for_component(&plan, 0));
        let mut clean_total = 0u64;
        let mut chaos_total = 0u64;
        for i in 0..64 {
            clean_total += clean.send(0, NodeId(0), NodeId(2), 16, i);
            chaos_total += chaotic.send(0, NodeId(0), NodeId(2), 16, i);
        }
        assert!(chaos_total > clean_total, "injected delay must show up in ETAs");
        assert!(chaotic.chaos_stats().count(FaultKind::MeshDelay) > 0);
        // Delivery stays loss-free: every payload still arrives, and the
        // heap orders by (possibly perturbed) delivery time.
        let mut got: Vec<u32> = chaotic.deliver(u64::MAX).into_iter().map(|(_, p)| p).collect();
        assert_ne!(got, (0..64).collect::<Vec<_>>(), "faults should reorder this burst");
        got.sort_unstable();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn chaos_same_seed_is_bit_deterministic() {
        use gsi_chaos::{ChaosEngine, FaultPlan};
        let plan = FaultPlan::all(1234);
        let mut a = mesh();
        let mut b = mesh();
        a.set_chaos(ChaosEngine::for_component(&plan, 0));
        b.set_chaos(ChaosEngine::for_component(&plan, 0));
        for i in 0..100u32 {
            let src = NodeId((i % 16) as u8);
            let dst = NodeId(((i * 7) % 16) as u8);
            assert_eq!(a.send(0, src, dst, 32, i), b.send(0, src, dst, 32, i));
        }
        assert_eq!(a.deliver(u64::MAX), b.deliver(u64::MAX));
    }

    #[test]
    fn snapshot_restores_in_flight_traffic_exactly() {
        let mut m = mesh();
        for i in 0..12u32 {
            m.send(u64::from(i), NodeId((i % 16) as u8), NodeId(((i * 5) % 16) as u8), 32, i);
        }
        let snap = m.snapshot();
        let mut r = mesh();
        r.restore(&snap).expect("restore");
        // The restored mesh re-snapshots to identical bytes and behaves
        // identically: same deliveries, same contention for future sends.
        assert_eq!(r.snapshot().to_string(), snap.to_string());
        assert_eq!(
            r.send(3, NodeId(0), NodeId(3), 64, 99),
            m.send(3, NodeId(0), NodeId(3), 64, 99)
        );
        assert_eq!(r.deliver(u64::MAX), m.deliver(u64::MAX));
        assert_eq!(r.stats(), m.stats());
        // A snapshot from a different geometry is rejected.
        let mut tiny = Mesh::<u32>::new(MeshConfig { width: 2, height: 2, ..Default::default() });
        assert!(tiny.restore(&snap).is_err());
    }

    #[test]
    fn snapshot_resumes_chaos_stream() {
        use gsi_chaos::{ChaosEngine, FaultPlan};
        let plan = FaultPlan::all(77);
        let mut m = mesh();
        m.set_chaos(ChaosEngine::for_component(&plan, 0));
        for i in 0..40u32 {
            m.send(0, NodeId(0), NodeId(5), 16, i);
        }
        let snap = m.snapshot();
        let mut r = mesh();
        r.set_chaos(ChaosEngine::for_component(&plan, 0));
        r.restore(&snap).expect("restore");
        for i in 0..40u32 {
            assert_eq!(
                r.send(9, NodeId(1), NodeId(6), 16, i),
                m.send(9, NodeId(1), NodeId(6), 16, i)
            );
        }
    }

    #[test]
    fn xy_routing_is_minimal_in_latency() {
        // Latency equals the zero-load formula when the network is empty.
        let cfg = MeshConfig::default();
        for src in 0..16u8 {
            for dst in 0..16u8 {
                let mut m = mesh();
                let eta = m.send(100, NodeId(src), NodeId(dst), 8, 0);
                assert_eq!(
                    eta - 100,
                    cfg.zero_load_latency(NodeId(src), NodeId(dst), 8),
                    "src={src} dst={dst}"
                );
            }
        }
    }
}
