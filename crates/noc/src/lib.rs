//! # gsi-noc — message-level 2D mesh network-on-chip
//!
//! A deterministic, message-level model of the Garnet-style mesh used by the
//! GSI paper's simulated system (a 4×4 mesh with CPU, GPU SMs, and L2 banks
//! distributed across the nodes).
//!
//! Messages are routed with dimension-ordered (XY) routing. Each directional
//! link tracks when it is next free; a message occupies each link on its path
//! for its serialization time, so bursty traffic queues up and later messages
//! observe contention. This reproduces the latency *distributions* of a
//! flit-level NoC (base latency proportional to hop count, plus congestion)
//! without per-flit state — sufficient for stall attribution, where the NoC
//! matters only as a latency and contention source.
//!
//! ```
//! use gsi_noc::{Mesh, MeshConfig, NodeId};
//!
//! let mut mesh: Mesh<&str> = Mesh::new(MeshConfig::default());
//! let eta = mesh.send(0, NodeId(0), NodeId(15), 8, "hello");
//! assert!(eta >= 6); // six hops minimum on a 4x4 mesh corner-to-corner
//! // Tick the clock forward and collect deliveries.
//! let delivered = mesh.deliver(eta);
//! assert_eq!(delivered, vec![(NodeId(15), "hello")]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mesh;
mod stats;

pub use mesh::{Mesh, MeshConfig, NodeId};
pub use stats::NocStats;
