//! Traffic statistics for the mesh.

/// Counters accumulated by a [`Mesh`](crate::Mesh) over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Messages injected.
    pub messages: u64,
    /// Payload bytes injected.
    pub bytes: u64,
    /// Sum of hop counts over all messages.
    pub total_hops: u64,
    /// Sum of end-to-end latencies.
    pub total_latency: u64,
    /// Maximum end-to-end latency observed.
    pub max_latency: u64,
    /// Cycles messages spent queued behind busy links (congestion measure).
    pub link_queue_cycles: u64,
}

impl NocStats {
    /// Mean end-to-end latency, 0 if no messages were sent.
    pub fn avg_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }

    /// Mean hop count, 0 if no messages were sent.
    pub fn avg_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.messages as f64
        }
    }
}

gsi_json::json_struct!(NocStats {
    messages,
    bytes,
    total_hops,
    total_latency,
    max_latency,
    link_queue_cycles,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_of_empty_stats_are_zero() {
        let s = NocStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
    }

    #[test]
    fn averages() {
        let s = NocStats { messages: 4, total_latency: 40, total_hops: 8, ..Default::default() };
        assert_eq!(s.avg_latency(), 10.0);
        assert_eq!(s.avg_hops(), 2.0);
    }
}
