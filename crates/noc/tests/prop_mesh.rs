//! Randomized tests for the mesh: no message loss, latency lower bounds,
//! and determinism. Driven by a fixed-seed SplitMix64 generator
//! (deterministic, no external crates).

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi_noc::{Mesh, MeshConfig, NodeId};

/// Deterministic SplitMix64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn node(&mut self) -> NodeId {
        NodeId(self.below(16) as u8)
    }

    /// A random `(src, dst, size)` message.
    fn msg(&mut self) -> (NodeId, NodeId, u32) {
        (self.node(), self.node(), 1 + self.below(199) as u32)
    }
}

/// Every injected message is delivered exactly once, at its ETA, to the
/// right node.
#[test]
fn no_loss_no_duplication() {
    let mut rng = Rng::new(0x40C_0001);
    for _case in 0..48 {
        let nmsgs = 1 + rng.below(59) as usize;
        let msgs: Vec<(NodeId, NodeId, u32)> = (0..nmsgs).map(|_| rng.msg()).collect();

        let mut mesh: Mesh<usize> = Mesh::new(MeshConfig::default());
        let mut etas = Vec::new();
        for (i, (src, dst, size)) in msgs.iter().enumerate() {
            etas.push((mesh.send(0, *src, *dst, *size, i), *dst));
        }
        let horizon = etas.iter().map(|(t, _)| *t).max().unwrap();
        let mut delivered = vec![false; msgs.len()];
        for now in 0..=horizon {
            for (node, payload) in mesh.deliver(now) {
                assert!(!delivered[payload], "duplicate delivery of {payload}");
                delivered[payload] = true;
                assert_eq!(node, etas[payload].1);
                assert_eq!(now, etas[payload].0, "delivery at the promised cycle");
            }
        }
        assert!(delivered.iter().all(|&d| d), "all messages delivered");
        assert_eq!(mesh.in_flight(), 0);
    }
}

/// Latency is bounded below by the zero-load latency and is exactly it for
/// the first message on an idle mesh.
#[test]
fn latency_lower_bound() {
    let mut rng = Rng::new(0x40C_0002);
    for _case in 0..48 {
        let first = rng.msg();
        let nrest = rng.below(30) as usize;
        let rest: Vec<(NodeId, NodeId, u32)> = (0..nrest).map(|_| rng.msg()).collect();

        let cfg = MeshConfig::default();
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let eta = mesh.send(0, first.0, first.1, first.2, 0);
        assert_eq!(eta, cfg.zero_load_latency(first.0, first.1, first.2));
        for (i, (src, dst, size)) in rest.iter().enumerate() {
            let eta = mesh.send(0, *src, *dst, *size, i as u32 + 1);
            assert!(eta >= cfg.zero_load_latency(*src, *dst, *size));
        }
    }
}

/// The same injection sequence produces the same delivery schedule.
#[test]
fn deterministic_schedule() {
    let mut rng = Rng::new(0x40C_0003);
    for _case in 0..48 {
        let nmsgs = 1 + rng.below(39) as usize;
        let msgs: Vec<(NodeId, NodeId, u32)> = (0..nmsgs).map(|_| rng.msg()).collect();

        let run = |msgs: &[(NodeId, NodeId, u32)]| {
            let mut mesh: Mesh<usize> = Mesh::new(MeshConfig::default());
            let etas: Vec<u64> = msgs
                .iter()
                .enumerate()
                .map(|(i, (s, d, z))| mesh.send(i as u64, *s, *d, *z, i))
                .collect();
            etas
        };
        assert_eq!(run(&msgs), run(&msgs));
    }
}

/// Congestion monotonicity: sending the same message later never makes it
/// arrive earlier.
#[test]
fn send_time_monotonicity() {
    let mut rng = Rng::new(0x40C_0004);
    for _case in 0..128 {
        let src = rng.node();
        let dst = rng.node();
        let t1 = rng.below(100);
        let dt = rng.below(100);

        let mut a: Mesh<u32> = Mesh::new(MeshConfig::default());
        let mut b: Mesh<u32> = Mesh::new(MeshConfig::default());
        let e1 = a.send(t1, src, dst, 64, 0);
        let e2 = b.send(t1 + dt, src, dst, 64, 0);
        assert!(e2 >= e1);
    }
}
