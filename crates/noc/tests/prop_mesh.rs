//! Property tests for the mesh: no message loss, latency lower bounds, and
//! determinism.

use gsi_noc::{Mesh, MeshConfig, NodeId};
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u8..16).prop_map(NodeId)
}

proptest! {
    /// Every injected message is delivered exactly once, at its ETA, to the
    /// right node.
    #[test]
    fn no_loss_no_duplication(
        msgs in proptest::collection::vec((arb_node(), arb_node(), 1u32..200), 1..60),
    ) {
        let mut mesh: Mesh<usize> = Mesh::new(MeshConfig::default());
        let mut etas = Vec::new();
        for (i, (src, dst, size)) in msgs.iter().enumerate() {
            etas.push((mesh.send(0, *src, *dst, *size, i), *dst));
        }
        let horizon = etas.iter().map(|(t, _)| *t).max().unwrap();
        let mut delivered = vec![false; msgs.len()];
        for now in 0..=horizon {
            for (node, payload) in mesh.deliver(now) {
                prop_assert!(!delivered[payload], "duplicate delivery of {}", payload);
                delivered[payload] = true;
                prop_assert_eq!(node, etas[payload].1);
                prop_assert_eq!(now, etas[payload].0, "delivery at the promised cycle");
            }
        }
        prop_assert!(delivered.iter().all(|&d| d), "all messages delivered");
        prop_assert_eq!(mesh.in_flight(), 0);
    }

    /// Latency is bounded below by the zero-load latency and is exactly it
    /// for the first message on an idle mesh.
    #[test]
    fn latency_lower_bound(
        first in (arb_node(), arb_node(), 1u32..200),
        rest in proptest::collection::vec((arb_node(), arb_node(), 1u32..200), 0..30),
    ) {
        let cfg = MeshConfig::default();
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let eta = mesh.send(0, first.0, first.1, first.2, 0);
        prop_assert_eq!(eta, cfg.zero_load_latency(first.0, first.1, first.2));
        for (i, (src, dst, size)) in rest.iter().enumerate() {
            let eta = mesh.send(0, *src, *dst, *size, i as u32 + 1);
            prop_assert!(eta >= cfg.zero_load_latency(*src, *dst, *size));
        }
    }

    /// The same injection sequence produces the same delivery schedule.
    #[test]
    fn deterministic_schedule(
        msgs in proptest::collection::vec((arb_node(), arb_node(), 1u32..200), 1..40),
    ) {
        let run = |msgs: &[(NodeId, NodeId, u32)]| {
            let mut mesh: Mesh<usize> = Mesh::new(MeshConfig::default());
            let etas: Vec<u64> = msgs
                .iter()
                .enumerate()
                .map(|(i, (s, d, z))| mesh.send(i as u64, *s, *d, *z, i))
                .collect();
            etas
        };
        prop_assert_eq!(run(&msgs), run(&msgs));
    }

    /// Congestion monotonicity: sending the same message later never makes
    /// it arrive earlier.
    #[test]
    fn send_time_monotonicity(
        src in arb_node(),
        dst in arb_node(),
        t1 in 0u64..100,
        dt in 0u64..100,
    ) {
        let mut a: Mesh<u32> = Mesh::new(MeshConfig::default());
        let mut b: Mesh<u32> = Mesh::new(MeshConfig::default());
        let e1 = a.send(t1, src, dst, 64, 0);
        let e2 = b.send(t1 + dt, src, dst, 64, 0);
        prop_assert!(e2 >= e1);
    }
}
