//! Thread-block state: barrier membership and completion tracking.

use crate::warp::WarpInit;

/// A thread block handed to an SM for execution.
#[derive(Debug, Clone)]
pub struct BlockInit {
    /// The grid-wide block id.
    pub block_id: u64,
    /// The block's warps, in warp-id order.
    pub warps: Vec<WarpInit>,
}

/// Resident-block bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct BlockState {
    pub block_id: u64,
    /// The hardware block slot occupied while resident; determines the
    /// block's scratchpad/stash partition.
    pub slot: usize,
    /// Indices of this block's warps in the SM warp table.
    pub warp_ids: Vec<usize>,
    /// Warps currently waiting at the barrier.
    pub barrier_count: usize,
    pub done: bool,
}

impl BlockState {
    pub fn new(block_id: u64, slot: usize, warp_ids: Vec<usize>) -> Self {
        BlockState { block_id, slot, warp_ids, barrier_count: 0, done: false }
    }
}

gsi_json::json_struct!(BlockState { block_id, slot, warp_ids, barrier_count, done });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_state_tracks_membership() {
        let b = BlockState::new(7, 0, vec![0, 1, 2]);
        assert_eq!(b.block_id, 7);
        assert_eq!(b.warp_ids.len(), 3);
        assert_eq!(b.barrier_count, 0);
        assert!(!b.done);
    }
}
