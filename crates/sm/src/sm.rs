//! The SM core: completions, the GSI-instrumented issue stage, and
//! functional execution.

use crate::block::{BlockInit, BlockState};
use crate::config::SmConfig;
use crate::scheduler::Scheduler;
use crate::warp::Warp;
use gsi_blame::{BlameCollector, UNKNOWN_PC};
use gsi_core::{
    classify_instruction, judge_cycle_scratch, InstrHazards, MemDataCause, StallCollector,
    StallKind,
};
use gsi_isa::{eval_alu, AtomOp, BranchCond, ExecUnit, Instr, Operand, Program, Reg};
use gsi_mem::{
    AtomKind, Completion, CoreMemUnit, DmaDirection, DmaTransfer, GlobalMem, LsuReject,
    StashMapping,
};
use gsi_trace::{NullSink, TraceEvent as Ev, TraceSink};

/// Execution statistics for one SM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Cycles ticked.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Cycles in which at least one instruction issued.
    pub issued_cycles: u64,
    /// Global/local loads issued.
    pub loads: u64,
    /// Global/local stores issued.
    pub stores: u64,
    /// Atomics issued.
    pub atomics: u64,
    /// Barriers executed (per warp).
    pub barriers: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Divergent branches executed (both sides ran serially).
    pub divergent_branches: u64,
}

/// A point-in-time diagnostic view of one warp's stall state, taken by the
/// simulator's forward-progress watchdog when a kernel stops making
/// progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpSnapshot {
    /// Warp id within the SM.
    pub warp: usize,
    /// Current program counter.
    pub pc: usize,
    /// False once the warp has executed `exit`.
    pub active: bool,
    /// Number of destination registers with outstanding load lines.
    pub pending_load_regs: u8,
    /// An acquire/release atomic is in flight.
    pub sync_pending: bool,
    /// Waiting at a thread-block barrier.
    pub at_barrier: bool,
    /// Last cycle this warp issued an instruction.
    pub last_issue: u64,
}

impl WarpSnapshot {
    /// A one-word description of what the warp is waiting on.
    pub fn stall_state(&self) -> &'static str {
        if !self.active {
            "exited"
        } else if self.at_barrier {
            "barrier"
        } else if self.sync_pending {
            "sync"
        } else if self.pending_load_regs > 0 {
            "load-wait"
        } else {
            "issuable"
        }
    }
}

/// Per-warp issue-stage profile: how often Algorithm 1 classified this
/// warp's next instruction into each category. The paper computes these
/// per-instruction classifications as the input to Algorithm 2; keeping
/// them per warp answers "which warps stall, and why" — useful when a few
/// straggler warps dominate a kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarpProfile {
    /// Instructions this warp issued.
    pub instructions: u64,
    /// Cycles this warp was considered, by Algorithm-1 classification
    /// (indexed by [`StallKind::index`]).
    pub considered: [u64; 8],
}

gsi_json::json_struct!(SmStats {
    cycles,
    instructions,
    issued_cycles,
    loads,
    stores,
    atomics,
    barriers,
    taken_branches,
    divergent_branches,
});

gsi_json::json_struct!(WarpProfile { instructions, considered });

impl WarpProfile {
    /// Cycles this warp's instruction was classified as `kind`.
    pub fn classified(&self, kind: StallKind) -> u64 {
        self.considered[kind.index()]
    }

    /// Total cycles this warp was considered by the issue stage.
    pub fn total_considered(&self) -> u64 {
        self.considered.iter().sum()
    }
}

/// One entry of the SM's instruction trace ring buffer (debugging aid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle the instruction issued.
    pub cycle: u64,
    /// Warp that issued it.
    pub warp: usize,
    /// Program counter.
    pub pc: usize,
    /// Disassembly of the instruction.
    pub text: String,
}

/// Reusable buffers for the per-cycle issue stage. Capacities reach a
/// steady state after the first few cycles, after which the hot path
/// performs no heap allocation (see `tests/alloc_free.rs`).
#[derive(Debug, Default)]
struct IssueScratch {
    /// Per-warp last-issue cycles, rebuilt each cycle for the scheduler.
    last_issue: Vec<u64>,
    /// Warp consideration order produced by the scheduler.
    order: Vec<usize>,
    /// Algorithm-1 hazard records for the considered instructions.
    considered: Vec<InstrHazards>,
    /// Causal instruction per considered entry, aligned with `considered`:
    /// the pc the cycle's verdict is blamed on when its kind wins.
    considered_pc: Vec<u32>,
    /// Algorithm-2 intermediate classifications.
    kinds: Vec<StallKind>,
    /// Completions drained from the memory unit at the top of the cycle.
    completions: Vec<Completion>,
    /// `(lane, byte address)` pairs of the active lanes of a memory access.
    pairs: Vec<(usize, u64)>,
    /// The bare addresses of `pairs`, in the shape the LSU expects.
    addrs: Vec<u64>,
    /// Per-warp frozen `(hazards, profile credit, causal pc)` records for
    /// a skipped stretch (`None` for inactive warps). The causal pc is
    /// stable across the window for the same reason the hazards are: the
    /// last-writer tables only change on an issue or a fill, and the
    /// caller guarantees neither happens inside it.
    skip_hazards: Vec<Option<(InstrHazards, bool, u32)>>,
}

/// What an SM can do next, computed by [`SmCore::next_wake`] without
/// mutating any state — the SM's entry in the event calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmWake {
    /// Some warp can issue this cycle (or a reconvergence pop is pending):
    /// the SM must be ticked densely.
    Busy,
    /// No warp can issue before this cycle, when a control-refetch or
    /// compute-latency timer expires.
    At(u64),
    /// Every wait is completion-driven: only a memory or mesh event can
    /// unblock the SM (or it has no active warps at all).
    Idle,
}

/// One streaming multiprocessor.
///
/// Drive it once per GPU cycle with [`tick`](Self::tick) after the memory
/// side has been ticked; the stall verdict for the cycle is recorded into
/// the provided [`StallCollector`].
#[derive(Debug)]
pub struct SmCore {
    id: u8,
    cfg: SmConfig,
    program: Option<Program>,
    warps: Vec<Warp>,
    blocks: Vec<BlockState>,
    scheduler: Scheduler,
    completed_blocks: Vec<u64>,
    stats: SmStats,
    profiles: Vec<WarpProfile>,
    trace_capacity: usize,
    trace: std::collections::VecDeque<TraceEntry>,
    scratch: IssueScratch,
    /// Indices of warps that have not exited, ascending. Swept at the top
    /// of each tick; a warp exiting mid-cycle lingers until the next sweep,
    /// which is harmless because every consumer re-checks `Warp::active`.
    /// Warp slots themselves are never recycled (warp ids are stable for
    /// profiles and timelines), so a long grid streaming hundreds of blocks
    /// through one SM grows `warps` without bound — this list keeps the
    /// per-cycle scans O(resident) instead of O(ever dispatched).
    live: Vec<usize>,
    /// Exact count of warps with `active == true`, maintained at the one
    /// deactivation site. The dispatcher's capacity check needs this every
    /// cycle and must not pay an O(ever) count.
    live_count: usize,
    /// Indices of blocks not yet reaped, in dispatch order.
    resident: Vec<usize>,
    /// Stall root-cause attribution (disabled by default). Lives here so
    /// attribution sees exactly what the issue stage sees, in both the
    /// dense and event-driven engines.
    blame: BlameCollector,
}

impl SmCore {
    /// Create SM number `id`.
    pub fn new(id: u8, cfg: SmConfig) -> Self {
        SmCore {
            id,
            cfg,
            program: None,
            warps: Vec::new(),
            blocks: Vec::new(),
            scheduler: Scheduler::default(),
            completed_blocks: Vec::new(),
            stats: SmStats::default(),
            profiles: Vec::new(),
            trace_capacity: 0,
            trace: std::collections::VecDeque::new(),
            scratch: IssueScratch::default(),
            live: Vec::new(),
            live_count: 0,
            resident: Vec::new(),
            blame: BlameCollector::new(),
        }
    }

    /// Enable or disable stall root-cause attribution. Off by default; a
    /// disabled collector records nothing, keeping the cycle loop
    /// allocation-free.
    pub fn set_blame_enabled(&mut self, enabled: bool) {
        self.blame.set_enabled(enabled);
    }

    /// This SM's blame collector (accumulates across kernel launches so
    /// multi-launch workloads like BFS report whole-run attribution).
    pub fn blame(&self) -> &BlameCollector {
        &self.blame
    }

    /// The installed kernel, if any.
    pub fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }

    /// Keep a ring buffer of the last `capacity` issued instructions (0
    /// disables tracing, the default). Tracing is a debugging aid: when a
    /// kernel misbehaves, the tail of the trace shows exactly what each
    /// warp last executed.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace_capacity = capacity;
        self.trace.clear();
    }

    /// The trace ring buffer, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> {
        self.trace.iter()
    }

    /// This SM's index.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// Install the kernel and clear all resident state (new launch).
    pub fn set_program(&mut self, program: Program) {
        self.program = Some(program);
        self.warps.clear();
        self.blocks.clear();
        self.completed_blocks.clear();
        self.scheduler = Scheduler::default();
        self.profiles.clear();
        self.live.clear();
        self.live_count = 0;
        self.resident.clear();
    }

    /// Per-warp issue-stage profiles for the current kernel, in warp-id
    /// order.
    pub fn warp_profiles(&self) -> &[WarpProfile] {
        &self.profiles
    }

    /// Point-in-time stall-state snapshots of every resident warp, appended
    /// to `out` in warp-id order. Read by the simulator's forward-progress
    /// watchdog when a run stops retiring instructions; not on the hot path.
    pub fn warp_snapshots(&self, out: &mut Vec<WarpSnapshot>) {
        for (id, w) in self.warps.iter().enumerate() {
            out.push(WarpSnapshot {
                warp: id,
                pc: w.pc,
                active: w.active,
                pending_load_regs: w.pending_loads.iter().filter(|&&n| n > 0).count() as u8,
                sync_pending: w.sync_pending,
                at_barrier: w.at_barrier,
                last_issue: w.last_issue,
            });
        }
    }

    /// Number of warps that have not exited.
    pub fn active_warps(&self) -> usize {
        debug_assert_eq!(self.live_count, self.warps.iter().filter(|w| w.active).count());
        self.live_count
    }

    /// Number of resident, unfinished blocks.
    pub fn resident_blocks(&self) -> usize {
        debug_assert_eq!(self.resident.len(), self.blocks.iter().filter(|b| !b.done).count());
        self.resident.len()
    }

    /// True when no warp can ever issue again.
    pub fn is_idle(&self) -> bool {
        self.active_warps() == 0
    }

    /// Whether a block of `warps` warps can be accepted right now.
    pub fn has_capacity(&self, warps: usize) -> bool {
        self.resident_blocks() < self.cfg.max_blocks
            && self.active_warps() + warps <= self.cfg.max_warps
    }

    /// Accept a block for execution.
    ///
    /// # Panics
    ///
    /// Panics if no program is installed or capacity is exceeded (callers
    /// must check [`has_capacity`](Self::has_capacity)).
    pub fn add_block(&mut self, block: BlockInit) {
        let mut warps = block.warps;
        self.add_block_from(block.block_id, &mut warps);
    }

    /// [`add_block`](Self::add_block) draining the warps from a
    /// caller-owned buffer, so a dispatcher running inside the cycle loop
    /// can reuse one scratch `Vec` instead of collecting a fresh one per
    /// block. `warps` is left empty with its capacity intact.
    ///
    /// # Panics
    ///
    /// Panics if no program is installed or capacity is exceeded.
    pub fn add_block_from(&mut self, block_id: u64, warps: &mut Vec<crate::warp::WarpInit>) {
        assert!(self.program.is_some(), "no kernel installed");
        assert!(self.has_capacity(warps.len()), "SM over capacity");
        let block_idx = self.blocks.len();
        let slot = self.peek_next_slot();
        let mut warp_ids = Vec::with_capacity(warps.len());
        for init in warps.drain(..) {
            warp_ids.push(self.warps.len());
            self.live.push(self.warps.len());
            self.live_count += 1;
            self.warps.push(Warp::new(block_idx, init));
            self.profiles.push(WarpProfile::default());
        }
        self.blocks.push(BlockState::new(block_id, slot, warp_ids));
        self.resident.push(block_idx);
    }

    /// Serialize all execution state: warps, blocks, scheduler, statistics,
    /// profiles, and the blame collector. The installed program, the trace
    /// ring, and the issue scratch buffers are excluded — the program is
    /// validated separately by the simulator's checkpoint envelope, and the
    /// other two are debugging/memoization state a restored SM rebuilds.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::ToJson;
        gsi_json::obj! {
            "id" => self.id,
            "warps" => self.warps.to_json(),
            "blocks" => self.blocks.to_json(),
            "scheduler" => self.scheduler.to_json(),
            "completed_blocks" => self.completed_blocks.to_json(),
            "stats" => self.stats.to_json(),
            "profiles" => self.profiles.to_json(),
            "live" => self.live.to_json(),
            "live_count" => self.live_count,
            "resident" => self.resident.to_json(),
            "blame" => self.blame.snapshot()
        }
    }

    /// Restore onto an SM with the kernel already installed via
    /// [`set_program`](Self::set_program).
    ///
    /// # Errors
    ///
    /// Fails when the snapshot belongs to a different SM id or is
    /// malformed.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        let id: u8 = v.read("id")?;
        if id != self.id {
            return Err(gsi_json::JsonError::new(format!(
                "SM snapshot is for SM {id}, not SM {}",
                self.id
            )));
        }
        self.warps = v.read("warps")?;
        self.blocks = v.read("blocks")?;
        self.scheduler = v.read("scheduler")?;
        self.completed_blocks = v.read("completed_blocks")?;
        self.stats = v.read("stats")?;
        self.profiles = v.read("profiles")?;
        self.live = v.read("live")?;
        self.live_count = v.read("live_count")?;
        self.resident = v.read("resident")?;
        self.blame.restore(v.req("blame")?)?;
        self.trace.clear();
        Ok(())
    }

    /// The hardware block slot the next accepted block will occupy: the
    /// smallest slot not used by a resident block. Determines the block's
    /// scratchpad/stash partition.
    pub fn peek_next_slot(&self) -> usize {
        (0..)
            .find(|&s| !self.resident.iter().any(|&bi| self.blocks[bi].slot == s))
            .expect("unbounded range")
    }

    /// Pop the ids of blocks that finished since the last call.
    pub fn take_completed_blocks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.completed_blocks)
    }

    /// [`take_completed_blocks`](Self::take_completed_blocks) appending into
    /// a caller-provided buffer, preserving the internal queue's capacity so
    /// a per-cycle caller allocates nothing in steady state.
    pub fn drain_completed_blocks(&mut self, out: &mut Vec<u64>) {
        out.append(&mut self.completed_blocks);
    }

    /// Advance one cycle: retire completions, then run the issue stage and
    /// record the cycle's stall verdict.
    pub fn tick(
        &mut self,
        now: u64,
        mem: &mut CoreMemUnit,
        gmem: &mut GlobalMem,
        collector: &mut StallCollector,
    ) {
        self.tick_traced(now, mem, gmem, collector, &mut NullSink);
    }

    /// [`tick`](Self::tick), recording issue-stage and memory events into
    /// `sink`.
    pub fn tick_traced<S: TraceSink>(
        &mut self,
        now: u64,
        mem: &mut CoreMemUnit,
        gmem: &mut GlobalMem,
        collector: &mut StallCollector,
        sink: &mut S,
    ) {
        self.stats.cycles += 1;
        self.sweep_live();
        self.retire_completions(mem, collector);
        self.issue_stage(now, mem, gmem, collector, sink);
        self.scheduler.next_cycle(self.warps.len());
        self.reap_blocks();
    }

    /// Drop warps that exited since the last sweep from the live list.
    fn sweep_live(&mut self) {
        let warps = &self.warps;
        self.live.retain(|&w| warps[w].active);
    }

    /// What this SM can do at cycle `now`, without mutating any state: the
    /// per-warp gates of [`issue_stage`] re-evaluated read-only, in the
    /// same order. [`SmWake::Busy`] when any warp could issue (or attempt
    /// to — structural rejections still consume a cycle's worth of work)
    /// or a reconvergence pop is pending; otherwise the earliest timer
    /// (control refetch, compute latency) that could unblock a warp, or
    /// [`SmWake::Idle`] when every wait is completion-driven.
    pub fn next_wake(&self, now: u64) -> SmWake {
        let Some(program) = self.program.as_ref() else { return SmWake::Idle };
        let mut earliest: Option<u64> = None;
        let note = |t: u64, earliest: &mut Option<u64>| {
            *earliest = Some(earliest.map_or(t, |e| e.min(t)));
        };
        for &wi in &self.live {
            let w = &self.warps[wi];
            if !w.active {
                continue;
            }
            if now < w.ibuffer_ready_at {
                note(w.ibuffer_ready_at, &mut earliest);
                continue;
            }
            if w.sync_pending || w.at_barrier {
                continue; // unblocked only by a completion
            }
            // A pending reconvergence pop mutates warp state inside the
            // issue stage; that cycle cannot be summarized.
            if let Some(top) = w.simt_stack.last() {
                if w.pc == top.rpc {
                    return SmWake::Busy;
                }
            }
            let instr = program.fetch(w.pc).copied().unwrap_or(Instr::Exit);
            let srcs = instr.source_regs();
            let dest = instr.dest();
            if srcs.iter().chain(dest.as_ref()).any(|r| w.load_pending(r.0)) {
                continue; // unblocked only by a fill
            }
            let latest = srcs.iter().chain(dest.as_ref()).map(|r| w.ready_at[r.0 as usize]).max();
            match latest {
                Some(t) if t > now => note(t, &mut earliest),
                _ => return SmWake::Busy, // issuable right now
            }
        }
        match earliest {
            Some(t) => SmWake::At(t),
            None => SmWake::Idle,
        }
    }

    /// Advance `n` cycles in one step over a stretch in which no warp can
    /// issue — the event engine's bulk form of [`tick`](Self::tick).
    ///
    /// The caller guarantees (via [`next_wake`](Self::next_wake)) that for
    /// every cycle in `[start, start + n)` each warp's Algorithm-1
    /// classification is the one observable at `start`: no completions
    /// arrive, no timer expires inside the window, and no warp is
    /// issuable. Under those conditions this produces bit-identical
    /// collector state, statistics, and per-warp profiles to `n`
    /// individual ticks — including the round-robin rotation of the cycle
    /// verdict's detail fields, which is replayed per cycle from the
    /// frozen hazards.
    pub fn skip_cycles(&mut self, start: u64, n: u64, collector: &mut StallCollector) {
        if n == 0 {
            return;
        }
        self.stats.cycles += n;
        self.sweep_live();
        // Freeze each warp's hazard record once; it is constant across the
        // window. The credit flag mirrors the dense loop: control- and
        // sync-blocked warps bail out before the per-warp profile line.
        // The buffer stays indexed by warp id (the scheduler order below
        // yields warp ids) but only live entries are filled.
        let mut hazards = std::mem::take(&mut self.scratch.skip_hazards);
        hazards.clear();
        hazards.resize(self.warps.len(), None);
        let program = self.program.as_ref().expect("program installed");
        for &wi in &self.live {
            let w = &self.warps[wi];
            if !w.active {
                continue;
            }
            let mut hz = InstrHazards::default();
            if start < w.ibuffer_ready_at {
                hz.control = true;
                hazards[wi] = Some((hz, false, w.last_branch_pc));
                continue;
            }
            if w.sync_pending || w.at_barrier {
                hz.synchronization = true;
                hazards[wi] = Some((hz, false, w.sync_pc));
                continue;
            }
            debug_assert!(
                w.simt_stack.last().is_none_or(|top| w.pc != top.rpc),
                "skipped a cycle with a pending reconvergence pop"
            );
            let instr = program.fetch(w.pc).copied().unwrap_or(Instr::Exit);
            let srcs = instr.source_regs();
            let dest = instr.dest();
            let mut cause_pc = UNKNOWN_PC;
            for r in srcs.iter().chain(dest.as_ref()) {
                if w.load_pending(r.0) {
                    hz.mem_data = w.blocking_req(r.0);
                    cause_pc = w.blocking_req_pc(r.0).unwrap_or(UNKNOWN_PC);
                    break;
                }
            }
            if hz.mem_data.is_none() {
                // Blame the operand that clears last: that choice is
                // invariant over the whole stall (earlier operands drop out
                // of the pending set, the latest one gates issue until the
                // end), so the dense loop and this frozen window agree.
                let mut latest = 0u64;
                for r in srcs.iter().chain(dest.as_ref()) {
                    if w.compute_pending(r.0, start) && w.ready_at[r.0 as usize] > latest {
                        hz.compute_data = true;
                        latest = w.ready_at[r.0 as usize];
                        cause_pc = w.reg_writer[r.0 as usize];
                    }
                }
            }
            debug_assert!(!hz.can_issue(), "skipped a cycle with an issuable warp");
            hazards[wi] = Some((hz, true, cause_pc));
        }

        // Per-warp profile credit is order-independent: bulk-charge it.
        for &wi in &self.live {
            if let Some((hz, true, _)) = &hazards[wi] {
                let kind = classify_instruction(hz);
                self.profiles[wi].considered[kind.index()] += n;
            }
        }

        let mut order = std::mem::take(&mut self.scratch.order);
        let mut considered = std::mem::take(&mut self.scratch.considered);
        let mut considered_pc = std::mem::take(&mut self.scratch.considered_pc);
        {
            let last_issue = &mut self.scratch.last_issue;
            last_issue.clear();
            last_issue.extend(self.live.iter().map(|&w| self.warps[w].last_issue));
        }
        let rounds = match self.cfg.scheduler {
            // GTO order is frozen while nothing issues: one verdict covers
            // the whole window.
            crate::config::SchedPolicy::Gto => 1,
            // Round-robin rotates the consideration order every cycle, and
            // the verdict's detail fields (blocking request, rejection
            // cause) come from the first matching warp in order — replay
            // the cheap part per cycle.
            crate::config::SchedPolicy::RoundRobin => n,
        };
        for round in 0..rounds {
            self.scheduler.order_active_into(
                self.cfg.scheduler,
                &self.live,
                &self.scratch.last_issue,
                &mut order,
            );
            considered.clear();
            considered_pc.clear();
            for &wi in &order {
                if let Some((hz, _, pc)) = hazards[wi] {
                    considered.push(hz);
                    considered_pc.push(pc);
                }
            }
            let verdict = judge_cycle_scratch(
                &self.cfg.cycle_priority,
                false,
                &considered,
                &mut self.scratch.kinds,
            );
            let per_round = if rounds == 1 { n } else { 1 };
            if self.blame.is_enabled() {
                let cause = verdict_cause_pc(&verdict, &self.scratch.kinds, &considered_pc);
                self.blame.record(verdict.kind, cause, verdict.blocking_request, per_round);
            }
            if rounds == 1 {
                collector.record_cycles(&verdict, n);
            } else {
                collector.record_cycle(&verdict);
                self.scheduler.next_cycle(self.warps.len());
            }
            let _ = round;
        }
        if rounds == 1 {
            self.scheduler.advance_cycles(n, self.warps.len());
        }
        self.scratch.order = order;
        self.scratch.considered = considered;
        self.scratch.considered_pc = considered_pc;
        self.scratch.skip_hazards = hazards;
    }

    fn retire_completions(&mut self, mem: &mut CoreMemUnit, collector: &mut StallCollector) {
        // The buffer is moved out of `self` for the loop (a move, not an
        // allocation) because the body mutates warps.
        let mut completions = std::mem::take(&mut self.scratch.completions);
        mem.drain_completions(&mut completions);
        for c in completions.drain(..) {
            match c {
                Completion::Load { req, warp, reg, provenance } => {
                    collector.on_fill(req, provenance);
                    self.blame.on_fill(req, provenance);
                    self.warps[warp as usize].complete_load(reg, req);
                }
                Completion::Atomic { req, warp, reg, value, acquire, release, write_dst } => {
                    // Any stalls charged against a relaxed atomic are an L2
                    // service (atomics always execute at the L2).
                    collector.on_fill(req, MemDataCause::L2);
                    self.blame.on_fill(req, MemDataCause::L2);
                    let w = &mut self.warps[warp as usize];
                    if write_dst {
                        for lane in &mut w.regs {
                            lane[reg as usize] = value;
                        }
                    }
                    if acquire || release {
                        w.sync_pending = false;
                    } else {
                        w.complete_load(reg, req);
                    }
                }
            }
        }
        self.scratch.completions = completions;
    }

    fn issue_stage<S: TraceSink>(
        &mut self,
        now: u64,
        mem: &mut CoreMemUnit,
        gmem: &mut GlobalMem,
        collector: &mut StallCollector,
        sink: &mut S,
    ) {
        // Scratch buffers are moved out of `self` for the duration of the
        // stage (moves, not allocations) so the per-warp mutations below
        // can borrow `self` freely.
        let mut order = std::mem::take(&mut self.scratch.order);
        let mut considered = std::mem::take(&mut self.scratch.considered);
        let mut considered_pc = std::mem::take(&mut self.scratch.considered_pc);
        {
            let last_issue = &mut self.scratch.last_issue;
            last_issue.clear();
            last_issue.extend(self.live.iter().map(|&w| self.warps[w].last_issue));
            self.scheduler.order_active_into(
                self.cfg.scheduler,
                &self.live,
                last_issue,
                &mut order,
            );
        }
        considered.clear();
        considered_pc.clear();

        let mut issued = 0usize;
        let mut alu_used = 0u32;
        let mut sfu_used = 0u32;

        for &wi in &order {
            if !self.warps[wi].active {
                continue;
            }
            let mut hz = InstrHazards::default();
            let w = &self.warps[wi];
            if now < w.ibuffer_ready_at {
                hz.control = true;
                if sink.events_on() {
                    sink.record(Ev::WarpStall {
                        cycle: now,
                        sm: self.id,
                        warp: wi as u16,
                        kind: StallKind::Control,
                        cause_pc: w.last_branch_pc,
                    });
                }
                considered.push(hz);
                considered_pc.push(w.last_branch_pc);
                continue;
            }
            if w.sync_pending || w.at_barrier {
                hz.synchronization = true;
                if sink.events_on() {
                    sink.record(Ev::WarpStall {
                        cycle: now,
                        sm: self.id,
                        warp: wi as u16,
                        kind: StallKind::Synchronization,
                        cause_pc: w.sync_pc,
                    });
                }
                considered.push(hz);
                considered_pc.push(w.sync_pc);
                continue;
            }
            // SIMT reconvergence: when the running side reaches the join
            // point, switch to the deferred side (or restore the full mask).
            {
                let w = &mut self.warps[wi];
                while let Some(&top) = w.simt_stack.last() {
                    if w.pc != top.rpc {
                        break;
                    }
                    w.simt_stack.pop();
                    w.active_mask = top.mask;
                    if w.pc != top.pc {
                        // Redirected fetch: pay the refetch penalty, like a
                        // taken branch; the refetch is the divergent
                        // branch's fault.
                        w.pc = top.pc;
                        w.ibuffer_ready_at = now + 1 + self.cfg.branch_refetch;
                        w.last_branch_pc = top.origin;
                    }
                }
                if now < w.ibuffer_ready_at {
                    hz.control = true;
                    if sink.events_on() {
                        sink.record(Ev::WarpStall {
                            cycle: now,
                            sm: self.id,
                            warp: wi as u16,
                            kind: StallKind::Control,
                            cause_pc: w.last_branch_pc,
                        });
                    }
                    considered.push(hz);
                    considered_pc.push(w.last_branch_pc);
                    continue;
                }
            }
            let w = &self.warps[wi];
            let program = self.program.as_ref().expect("program installed");
            let instr = program.fetch(w.pc).copied().unwrap_or(Instr::Exit);

            // Data hazards: outstanding loads first (stronger), then
            // compute results in flight. Sources are scanned before the
            // destination so the blocking request of the earliest source
            // operand is the one charged.
            let srcs = instr.source_regs();
            let dest = instr.dest();
            let mut cause_pc = UNKNOWN_PC;
            for r in srcs.iter().chain(dest.as_ref()) {
                if w.load_pending(r.0) {
                    hz.mem_data = w.blocking_req(r.0);
                    cause_pc = w.blocking_req_pc(r.0).unwrap_or(UNKNOWN_PC);
                    break;
                }
            }
            if hz.mem_data.is_none() {
                // Blame the operand with the latest ready cycle: the one
                // that actually gates issue, and the only choice stable
                // across the stall (so the event engine's frozen windows
                // attribute identically).
                let mut latest = 0u64;
                for r in srcs.iter().chain(dest.as_ref()) {
                    if w.compute_pending(r.0, now) && w.ready_at[r.0 as usize] > latest {
                        hz.compute_data = true;
                        latest = w.ready_at[r.0 as usize];
                        cause_pc = w.reg_writer[r.0 as usize];
                    }
                }
            }

            if hz.can_issue() && issued < self.cfg.issue_width {
                let pc_before = self.warps[wi].pc;
                // A structural rejection is the stalled instruction's own
                // doing: the causal pc is itself.
                cause_pc = pc_before as u32;
                match self.execute(wi, instr, now, mem, gmem, &mut alu_used, &mut sfu_used, sink) {
                    Ok(()) => {
                        issued += 1;
                        self.stats.instructions += 1;
                        self.profiles[wi].instructions += 1;
                        self.warps[wi].last_issue = now;
                        self.scheduler.issued(wi);
                        if self.trace_capacity > 0 {
                            if self.trace.len() == self.trace_capacity {
                                self.trace.pop_front();
                            }
                            self.trace.push_back(TraceEntry {
                                cycle: now,
                                warp: wi,
                                pc: pc_before,
                                text: instr.to_string(),
                            });
                        }
                    }
                    Err(structural) => {
                        if sink.counters_on() {
                            if let Some(cause) = structural.mem_structural {
                                sink.record(Ev::LsuReject {
                                    cycle: now,
                                    sm: self.id,
                                    warp: wi as u16,
                                    cause,
                                });
                            }
                        }
                        hz = structural;
                    }
                }
            }
            let kind = classify_instruction(&hz);
            self.profiles[wi].considered[kind.index()] += 1;
            if sink.events_on() && kind != StallKind::NoStall {
                sink.record(Ev::WarpStall {
                    cycle: now,
                    sm: self.id,
                    warp: wi as u16,
                    kind,
                    cause_pc,
                });
            }
            considered.push(hz);
            considered_pc.push(cause_pc);
        }

        let verdict = judge_cycle_scratch(
            &self.cfg.cycle_priority,
            issued > 0,
            &considered,
            &mut self.scratch.kinds,
        );
        if self.blame.is_enabled() {
            let cause = verdict_cause_pc(&verdict, &self.scratch.kinds, &considered_pc);
            self.blame.record(verdict.kind, cause, verdict.blocking_request, 1);
        }
        self.scratch.order = order;
        self.scratch.considered = considered;
        self.scratch.considered_pc = considered_pc;
        if issued > 0 {
            self.stats.issued_cycles += 1;
        }
        if sink.events_on() {
            sink.record(Ev::IssueVerdict {
                cycle: now,
                sm: self.id,
                kind: verdict.kind,
                issued: issued.min(u8::MAX as usize) as u8,
            });
        }
        collector.record_cycle(&verdict);
    }

    /// Attempt to issue `instr` from warp `wi`. On a structural hazard the
    /// instruction stays put and the hazard is returned for classification.
    #[allow(clippy::too_many_arguments)] // the issue stage's full context
    fn execute<S: TraceSink>(
        &mut self,
        wi: usize,
        instr: Instr,
        now: u64,
        mem: &mut CoreMemUnit,
        gmem: &mut GlobalMem,
        alu_used: &mut u32,
        sfu_used: &mut u32,
        sink: &mut S,
    ) -> Result<(), InstrHazards> {
        let take_unit =
            |unit: ExecUnit, alu_used: &mut u32, sfu_used: &mut u32, cfg: &SmConfig| match unit {
                ExecUnit::Alu => {
                    if *alu_used >= cfg.alu_per_cycle {
                        return Err(InstrHazards::compute_structural());
                    }
                    *alu_used += 1;
                    Ok(cfg.alu_latency)
                }
                ExecUnit::Sfu => {
                    if *sfu_used >= cfg.sfu_per_cycle {
                        return Err(InstrHazards::compute_structural());
                    }
                    *sfu_used += 1;
                    Ok(cfg.sfu_latency)
                }
            };
        let reject_to_hazard = |r: LsuReject| InstrHazards::mem_structural(r.cause());

        match instr {
            Instr::Alu { op, dst, a, b } => {
                let lat = take_unit(op.unit(), alu_used, sfu_used, &self.cfg)?;
                let w = &mut self.warps[wi];
                let mask = w.active_mask;
                for lane in 0..w.regs.len() {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let av = op_val(&w.regs[lane], a);
                    let bv = op_val(&w.regs[lane], b);
                    w.regs[lane][dst.0 as usize] = eval_alu(op, av, bv);
                }
                w.ready_at[dst.0 as usize] = now + lat;
                w.reg_writer[dst.0 as usize] = w.pc as u32;
                w.pc += 1;
            }
            Instr::Ldi { dst, imm } => {
                let lat = take_unit(ExecUnit::Alu, alu_used, sfu_used, &self.cfg)?;
                let w = &mut self.warps[wi];
                let mask = w.active_mask;
                for (lane, regs) in w.regs.iter_mut().enumerate() {
                    if mask & (1 << lane) != 0 {
                        regs[dst.0 as usize] = imm;
                    }
                }
                w.ready_at[dst.0 as usize] = now + lat;
                w.reg_writer[dst.0 as usize] = w.pc as u32;
                w.pc += 1;
            }
            Instr::Sel { dst, cond, a, b } => {
                let lat = take_unit(ExecUnit::Alu, alu_used, sfu_used, &self.cfg)?;
                let w = &mut self.warps[wi];
                let mask = w.active_mask;
                for lane in 0..w.regs.len() {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let c = w.regs[lane][cond.0 as usize];
                    let v =
                        if c != 0 { op_val(&w.regs[lane], a) } else { op_val(&w.regs[lane], b) };
                    w.regs[lane][dst.0 as usize] = v;
                }
                w.ready_at[dst.0 as usize] = now + lat;
                w.reg_writer[dst.0 as usize] = w.pc as u32;
                w.pc += 1;
            }
            Instr::LdGlobal { dst, addr, offset } => {
                self.fill_lane_addrs(wi, addr, offset);
                let issued = mem
                    .try_global_load_traced(now, wi as u16, dst.0, &self.scratch.addrs, sink)
                    .map_err(reject_to_hazard)?;
                let w = &mut self.warps[wi];
                for &(lane, a) in &self.scratch.pairs {
                    w.regs[lane][dst.0 as usize] = gmem.read_word(a);
                }
                let pc = w.pc as u32;
                for req in issued.reqs {
                    w.add_pending_load(dst.0, req, pc);
                }
                w.reg_writer[dst.0 as usize] = pc;
                w.pc += 1;
                self.stats.loads += 1;
            }
            Instr::StGlobal { src, addr, offset } => {
                self.fill_lane_addrs(wi, addr, offset);
                mem.try_global_store_traced(now, &self.scratch.addrs, sink)
                    .map_err(reject_to_hazard)?;
                let w = &mut self.warps[wi];
                for &(lane, a) in &self.scratch.pairs {
                    gmem.write_word(a, op_val(&w.regs[lane], src));
                }
                w.pc += 1;
                self.stats.stores += 1;
            }
            Instr::LdLocal { dst, addr, offset } => {
                self.fill_lane_addrs(wi, addr, offset);
                let issued = mem
                    .try_local_load_traced(now, wi as u16, dst.0, &self.scratch.addrs, sink)
                    .map_err(reject_to_hazard)?;
                let w = &mut self.warps[wi];
                for &(lane, a) in &self.scratch.pairs {
                    w.regs[lane][dst.0 as usize] = mem.local_read_word(a, gmem);
                }
                let pc = w.pc as u32;
                for req in issued.reqs {
                    w.add_pending_load(dst.0, req, pc);
                }
                w.reg_writer[dst.0 as usize] = pc;
                w.pc += 1;
                self.stats.loads += 1;
            }
            Instr::StLocal { src, addr, offset } => {
                self.fill_lane_addrs(wi, addr, offset);
                mem.try_local_store_traced(now, &self.scratch.addrs, sink)
                    .map_err(reject_to_hazard)?;
                let w = &mut self.warps[wi];
                for &(lane, a) in &self.scratch.pairs {
                    let v = op_val(&w.regs[lane], src);
                    mem.local_write_word(a, v, gmem);
                }
                w.pc += 1;
                self.stats.stores += 1;
            }
            Instr::Atom { op, dst, addr, a, b, sem } => {
                let w = &self.warps[wi];
                // Atomics execute on the warp's leader lane (lane 0 under
                // full convergence).
                let leader = &w.regs[w.leader()];
                let address = leader[addr.0 as usize];
                let av = op_val(leader, a);
                let bv = op_val(leader, b);
                let kind = match op {
                    AtomOp::Cas => AtomKind::Cas,
                    AtomOp::Exch => AtomKind::Exch,
                    AtomOp::Add => AtomKind::Add,
                    AtomOp::Load => AtomKind::Load,
                    AtomOp::Store => AtomKind::Store,
                };
                let req = mem
                    .try_atomic_traced(
                        now,
                        wi as u16,
                        dst.0,
                        address,
                        kind,
                        av,
                        bv,
                        sem.is_acquire(),
                        sem.is_release(),
                        gmem,
                        sink,
                    )
                    .map_err(reject_to_hazard)?;
                let w = &mut self.warps[wi];
                let pc = w.pc as u32;
                if sem.is_acquire() || sem.is_release() {
                    w.sync_pending = true;
                    w.sync_pc = pc;
                } else {
                    w.add_pending_load(dst.0, req, pc);
                }
                w.reg_writer[dst.0 as usize] = pc;
                w.pc += 1;
                self.stats.atomics += 1;
            }
            Instr::Bar => {
                assert!(
                    self.warps[wi].simt_stack.is_empty(),
                    "barrier inside a divergent region is not supported"
                );
                let block_idx = self.warps[wi].block;
                {
                    let w = &mut self.warps[wi];
                    w.at_barrier = true;
                    w.sync_pc = w.pc as u32;
                    w.pc += 1;
                }
                self.blocks[block_idx].barrier_count += 1;
                self.stats.barriers += 1;
                self.maybe_release_barrier(block_idx);
            }
            Instr::Bra { cond, target } => {
                take_unit(ExecUnit::Alu, alu_used, sfu_used, &self.cfg)?;
                let w = &mut self.warps[wi];
                let lane0 = &w.regs[0];
                let taken = match cond {
                    BranchCond::Zero(r) => lane0[r.0 as usize] == 0,
                    BranchCond::NonZero(r) => lane0[r.0 as usize] != 0,
                };
                if taken {
                    w.last_branch_pc = w.pc as u32;
                    w.pc = target;
                    w.ibuffer_ready_at = now + 1 + self.cfg.branch_refetch;
                    self.stats.taken_branches += 1;
                } else {
                    w.pc += 1;
                }
            }
            Instr::BraDiv { cond, target, join } => {
                take_unit(ExecUnit::Alu, alu_used, sfu_used, &self.cfg)?;
                let w = &mut self.warps[wi];
                let cur = w.active_mask;
                let mut taken: u32 = 0;
                for lane in 0..w.regs.len() {
                    if cur & (1 << lane) == 0 {
                        continue;
                    }
                    let v = match cond {
                        BranchCond::Zero(r) => w.regs[lane][r.0 as usize] == 0,
                        BranchCond::NonZero(r) => w.regs[lane][r.0 as usize] != 0,
                    };
                    if v {
                        taken |= 1 << lane;
                    }
                }
                let not_taken = cur & !taken;
                let branch_pc = w.pc as u32;
                if taken == 0 {
                    w.pc += 1;
                } else if not_taken == 0 {
                    w.last_branch_pc = branch_pc;
                    w.pc = target;
                    w.ibuffer_ready_at = now + 1 + self.cfg.branch_refetch;
                    self.stats.taken_branches += 1;
                } else {
                    // Diverge: run the fall-through side first; the taken
                    // side and the full-mask restore wait on the stack.
                    // Both entries remember this branch as their origin so
                    // the refetch at each pop is blamed on it.
                    w.simt_stack.push(crate::warp::SimtEntry {
                        rpc: join,
                        mask: cur,
                        pc: join,
                        origin: branch_pc,
                    });
                    w.simt_stack.push(crate::warp::SimtEntry {
                        rpc: join,
                        mask: taken,
                        pc: target,
                        origin: branch_pc,
                    });
                    w.active_mask = not_taken;
                    w.pc += 1;
                    self.stats.divergent_branches += 1;
                }
            }
            Instr::Jmp { target } => {
                take_unit(ExecUnit::Alu, alu_used, sfu_used, &self.cfg)?;
                let w = &mut self.warps[wi];
                w.last_branch_pc = w.pc as u32;
                w.pc = target;
                w.ibuffer_ready_at = now + 1 + self.cfg.branch_refetch;
                self.stats.taken_branches += 1;
            }
            Instr::DmaLoad { global, local, bytes } => {
                let g = self.warps[wi].regs[0][global.0 as usize];
                let l = self.warps[wi].regs[0][local.0 as usize];
                let t = DmaTransfer::new(l, g, bytes, DmaDirection::ToScratchpad);
                mem.start_dma_traced(now, t, gmem, sink).map_err(reject_to_hazard)?;
                self.warps[wi].pc += 1;
            }
            Instr::DmaStore { global, local, bytes } => {
                let g = self.warps[wi].regs[0][global.0 as usize];
                let l = self.warps[wi].regs[0][local.0 as usize];
                let t = DmaTransfer::new(l, g, bytes, DmaDirection::ToGlobal);
                mem.start_dma_traced(now, t, gmem, sink).map_err(reject_to_hazard)?;
                self.warps[wi].pc += 1;
            }
            Instr::StashMap { global, local, bytes, writeback } => {
                let g = self.warps[wi].regs[0][global.0 as usize];
                let l = self.warps[wi].regs[0][local.0 as usize];
                mem.add_stash_mapping(StashMapping { local: l, global: g, bytes, writeback });
                self.warps[wi].pc += 1;
            }
            Instr::Exit => {
                assert!(
                    self.warps[wi].simt_stack.is_empty(),
                    "exit inside a divergent region is not supported"
                );
                let block_idx = self.warps[wi].block;
                self.warps[wi].active = false;
                self.live_count -= 1;
                // An exiting warp may be the last one a barrier was waiting
                // for.
                self.maybe_release_barrier(block_idx);
            }
            Instr::Nop => {
                self.warps[wi].pc += 1;
            }
        }
        Ok(())
    }

    /// Fill the scratch buffers with the `(lane, byte address)` pairs of
    /// the *active* lanes (and the bare addresses, in the shape the LSU
    /// expects).
    ///
    /// A structurally rejected access replays every cycle with identical
    /// operands (the data gates proved the sources ready, and nothing can
    /// write them again without an issue), so the computed pairs are cached
    /// in the warp and reused while the `(pc, last_issue, active_mask)` key
    /// holds. The walk over 32 strided per-lane register files is the
    /// expensive part; the replay path pays two contiguous copies instead.
    fn fill_lane_addrs(&mut self, wi: usize, addr: Reg, offset: i64) {
        let w = &mut self.warps[wi];
        let pairs = &mut self.scratch.pairs;
        let addrs = &mut self.scratch.addrs;
        pairs.clear();
        addrs.clear();
        let key = (w.pc, w.last_issue, w.active_mask);
        if w.addr_cache_key == Some(key) {
            pairs.extend_from_slice(&w.addr_cache_pairs);
            addrs.extend(pairs.iter().map(|&(_, a)| a));
            return;
        }
        for (lane, regs) in w.regs.iter().enumerate() {
            if w.active_mask & (1 << lane) != 0 {
                let a = regs[addr.0 as usize].wrapping_add(offset as u64);
                pairs.push((lane, a));
                addrs.push(a);
            }
        }
        w.addr_cache_key = Some(key);
        w.addr_cache_pairs.clear();
        w.addr_cache_pairs.extend_from_slice(pairs);
    }

    fn maybe_release_barrier(&mut self, block_idx: usize) {
        // The barrier releases when every still-active warp of the block is
        // waiting at it. Two passes over the (small) warp-id list, by
        // index, so no temporary collection is needed.
        let block = &self.blocks[block_idx];
        let mut any_active = false;
        for &w in &block.warp_ids {
            let warp = &self.warps[w];
            if warp.active {
                any_active = true;
                if !warp.at_barrier {
                    return;
                }
            }
        }
        if !any_active {
            return;
        }
        for i in 0..self.blocks[block_idx].warp_ids.len() {
            let w = self.blocks[block_idx].warp_ids[i];
            if self.warps[w].active {
                self.warps[w].at_barrier = false;
            }
        }
        self.blocks[block_idx].barrier_count = 0;
    }

    fn reap_blocks(&mut self) {
        let blocks = &mut self.blocks;
        let warps = &self.warps;
        let completed = &mut self.completed_blocks;
        self.resident.retain(|&bi| {
            let b = &mut blocks[bi];
            if b.warp_ids.iter().all(|&w| !warps[w].active) {
                b.done = true;
                completed.push(b.block_id);
                false
            } else {
                true
            }
        });
    }
}

/// Causal pc of a cycle verdict: the pc recorded for the first considered
/// instruction whose Algorithm-1 classification matches the verdict's kind
/// — the same position lookup `judge_cycle_scratch` uses for its detail
/// fields, so the blamed instruction and the blocking request agree.
/// `NoStall`/`Idle` cycles have no cause (and on issued cycles the kinds
/// scratch is stale, so they must not be looked up).
fn verdict_cause_pc(
    verdict: &gsi_core::CycleVerdict,
    kinds: &[StallKind],
    considered_pc: &[u32],
) -> u32 {
    if matches!(verdict.kind, StallKind::NoStall | StallKind::Idle) {
        return UNKNOWN_PC;
    }
    kinds
        .iter()
        .position(|&k| k == verdict.kind)
        .and_then(|i| considered_pc.get(i).copied())
        .unwrap_or(UNKNOWN_PC)
}

fn op_val(lane: &[u64; gsi_isa::NUM_REGS], op: Operand) -> u64 {
    match op {
        Operand::Reg(r) => lane[r.0 as usize],
        Operand::Imm(v) => v as u64,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::warp::WarpInit;
    use gsi_core::{StallBreakdown, StallKind};
    use gsi_isa::{MemSem, ProgramBuilder};
    use gsi_mem::MemConfig;
    use gsi_noc::NodeId;

    struct Rig {
        sm: SmCore,
        mem: CoreMemUnit,
        gmem: GlobalMem,
        collector: StallCollector,
        now: u64,
    }

    impl Rig {
        fn new(program: Program) -> Self {
            Self::with_mem(program, MemConfig::default())
        }

        fn with_mem(program: Program, mem_cfg: MemConfig) -> Self {
            let mut sm = SmCore::new(0, SmConfig::default());
            sm.set_program(program);
            Rig {
                sm,
                mem: CoreMemUnit::new(0, NodeId(0), mem_cfg),
                gmem: GlobalMem::new(),
                collector: StallCollector::new(),
                now: 0,
            }
        }

        fn add_warp(&mut self, init: WarpInit) {
            self.sm.add_block(BlockInit { block_id: 0, warps: vec![init] });
        }

        /// Tick until idle or the cycle limit, answering every memory
        /// request locally with an immediate L2 fill after `mem_lat` cycles.
        fn run(&mut self, limit: u64) {
            let mut fills: Vec<(u64, gsi_mem::MemMsg)> = Vec::new();
            while self.now < limit {
                // Deliver due fills.
                let mut rest = Vec::new();
                for (t, m) in fills.drain(..) {
                    if t <= self.now {
                        self.mem.deliver(self.now, m);
                    } else {
                        rest.push((t, m));
                    }
                }
                fills = rest;
                self.mem.tick(self.now);
                self.sm.tick(self.now, &mut self.mem, &mut self.gmem, &mut self.collector);
                // Fake the L2: answer requests after 30 cycles.
                for (_, msg) in self.mem.take_outbox() {
                    match msg {
                        gsi_mem::MemMsg::GetLine { line, .. } => {
                            let fill =
                                gsi_mem::MemMsg::Fill { line, provenance: gsi_mem::Provenance::L2 };
                            fills.push((self.now + 30, fill));
                        }
                        gsi_mem::MemMsg::AtomicOp { addr, kind, a, b, req, .. } => {
                            let old = self.gmem.read_word(addr);
                            let (new, ret) = kind.apply(old, a, b);
                            self.gmem.write_word(addr, new);
                            fills.push((
                                self.now + 30,
                                gsi_mem::MemMsg::AtomicResp { req, value: ret },
                            ));
                        }
                        gsi_mem::MemMsg::WriteWords { line, .. } => {
                            fills.push((self.now + 20, gsi_mem::MemMsg::WriteAck { line }));
                        }
                        gsi_mem::MemMsg::RegisterOwner { line, .. } => {
                            fills.push((self.now + 20, gsi_mem::MemMsg::RegisterAck { line }));
                        }
                        _ => {}
                    }
                }
                self.now += 1;
                if self.sm.is_idle() && fills.is_empty() {
                    break;
                }
            }
        }

        fn breakdown(self) -> StallBreakdown {
            self.collector.finish()
        }
    }

    #[test]
    fn straight_line_alu_program_runs_to_exit() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 5);
        b.addi(Reg(2), Reg(1), 3);
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.add_warp(WarpInit::zeroed());
        rig.run(100);
        assert!(rig.sm.is_idle());
        assert_eq!(rig.sm.stats().instructions, 3);
        assert_eq!(rig.sm.warps[0].regs[0][2], 8);
        assert_eq!(rig.sm.take_completed_blocks(), vec![0]);
    }

    #[test]
    fn dependent_alu_ops_cause_compute_data_stalls() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 5);
        b.addi(Reg(2), Reg(1), 1); // depends on r1 (4-cycle ALU)
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.add_warp(WarpInit::zeroed());
        rig.run(100);
        let bd = rig.breakdown();
        assert!(bd.cycles(StallKind::ComputeData) > 0, "{bd:?}");
    }

    #[test]
    fn load_use_causes_memory_data_stall_attributed_to_l2() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 0x1000);
        b.ld_global(Reg(2), Reg(1), 0);
        b.addi(Reg(3), Reg(2), 1); // use immediately
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.gmem.write_word(0x1000, 77);
        rig.add_warp(WarpInit::zeroed());
        rig.run(200);
        assert_eq!(rig.sm.warps[0].regs[0][3], 78, "functional value flows");
        let bd = rig.breakdown();
        assert!(bd.cycles(StallKind::MemoryData) > 0);
        assert!(bd.mem_data_cycles(MemDataCause::L2) > 0, "{bd:?}");
        assert_eq!(
            bd.cycles(StallKind::MemoryData),
            bd.mem_data_total(),
            "every memory-data cycle is sub-classified"
        );
    }

    #[test]
    fn taken_branches_cause_control_stalls() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 3);
        let top = b.here();
        b.subi(Reg(1), Reg(1), 1);
        b.bra_nz(Reg(1), top);
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.add_warp(WarpInit::zeroed());
        rig.run(200);
        let stats = *rig.sm.stats();
        assert_eq!(stats.taken_branches, 2);
        let bd = rig.breakdown();
        assert!(bd.cycles(StallKind::Control) > 0, "{bd:?}");
    }

    #[test]
    fn barrier_synchronizes_two_warps() {
        // Warp 0 burns cycles before the barrier; warp 1 reaches it first
        // and stalls on synchronization.
        let mut b = ProgramBuilder::new("t");
        // r1 = per-warp loop count (r1 preset), spin:
        let top = b.here();
        b.subi(Reg(1), Reg(1), 1);
        b.bra_nz(Reg(1), top);
        b.bar();
        b.st_global(Operand::Imm(1), Reg(2), 0); // r2 = flag addr
        b.exit();
        let p = b.build().unwrap();
        let mut rig = Rig::new(p);
        let mut w0 = WarpInit::zeroed();
        w0.set_uniform(1, 40);
        w0.set_uniform(2, 0x100);
        let mut w1 = WarpInit::zeroed();
        w1.set_uniform(1, 1);
        w1.set_uniform(2, 0x108);
        rig.sm.add_block(BlockInit { block_id: 9, warps: vec![w0, w1] });
        rig.run(500);
        assert!(rig.sm.is_idle());
        assert_eq!(rig.gmem.read_word(0x100), 1);
        assert_eq!(rig.gmem.read_word(0x108), 1);
        assert_eq!(rig.sm.take_completed_blocks(), vec![9]);
        let bd = rig.breakdown();
        assert!(bd.cycles(StallKind::Synchronization) > 0, "{bd:?}");
    }

    #[test]
    fn acquire_atomic_blocks_warp_as_synchronization() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 0x200);
        b.atom_cas(Reg(2), Reg(1), Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
        b.addi(Reg(3), Reg(2), 0); // dependent on CAS result
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.add_warp(WarpInit::zeroed());
        rig.run(300);
        assert!(rig.sm.is_idle());
        assert_eq!(rig.gmem.read_word(0x200), 1, "CAS succeeded");
        assert_eq!(rig.sm.warps[0].regs[0][3], 0, "old value returned");
        let bd = rig.breakdown();
        assert!(bd.cycles(StallKind::Synchronization) > 0, "{bd:?}");
    }

    #[test]
    fn idle_sm_records_idle_cycles() {
        let mut b = ProgramBuilder::new("t");
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.add_warp(WarpInit::zeroed());
        // Run 10 cycles beyond exit.
        for now in 0..10 {
            rig.mem.tick(now);
            rig.sm.tick(now, &mut rig.mem, &mut rig.gmem, &mut rig.collector);
        }
        let bd = rig.collector.finish();
        assert!(bd.cycles(StallKind::Idle) >= 8, "{bd:?}");
    }

    #[test]
    fn per_lane_addresses_coalesce_to_lines() {
        let mut b = ProgramBuilder::new("t");
        // r1 = 0x1000 + lane*8 (preset per lane): one warp load = 4 lines.
        b.ld_global(Reg(2), Reg(1), 0);
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        let mut w = WarpInit::zeroed();
        w.set_per_lane(1, |l| 0x1000 + l as u64 * 8);
        rig.add_warp(w);
        rig.run(200);
        // 32 lanes x 8B = 256B = 4 lines.
        assert_eq!(rig.mem.stats().l1_misses, 4);
    }

    #[test]
    fn capacity_accounting() {
        let mut b = ProgramBuilder::new("t");
        b.exit();
        let p = b.build().unwrap();
        let mut sm = SmCore::new(0, SmConfig { max_warps: 2, max_blocks: 1, ..Default::default() });
        sm.set_program(p);
        assert!(sm.has_capacity(2));
        assert!(!sm.has_capacity(3));
        sm.add_block(BlockInit { block_id: 0, warps: vec![WarpInit::zeroed()] });
        assert!(!sm.has_capacity(1), "block slots exhausted");
    }

    #[test]
    fn divergent_branch_runs_both_sides_and_reconverges() {
        // Odd lanes: r2 = r1 * 2; even lanes: r2 = r1 + 100. Then all
        // lanes: r3 = r2 + 1.
        let mut b = ProgramBuilder::new("div");
        let then_l = b.label();
        let join_l = b.label();
        b.and(Reg(4), Reg(1), Operand::Imm(1)); // odd?
        b.bra_div_nz(Reg(4), then_l, join_l);
        // else: even lanes
        b.addi(Reg(2), Reg(1), 100);
        b.jmp_to(join_l);
        b.bind(then_l);
        b.shl(Reg(2), Reg(1), Operand::Imm(1));
        b.bind(join_l);
        b.addi(Reg(3), Reg(2), 1);
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        let mut w = WarpInit::zeroed();
        w.set_per_lane(1, |l| l as u64);
        rig.add_warp(w);
        rig.run(300);
        assert!(rig.sm.is_idle());
        for lane in 0..32u64 {
            let want = if lane % 2 == 1 { lane * 2 + 1 } else { lane + 100 + 1 };
            assert_eq!(rig.sm.warps[0].regs[lane as usize][3], want, "lane {lane}");
        }
        assert_eq!(rig.sm.stats().divergent_branches, 1);
        assert!(rig.sm.warps[0].simt_stack.is_empty());
        assert_eq!(rig.sm.warps[0].active_mask, u32::MAX);
    }

    #[test]
    fn nested_divergence_reconverges_in_order() {
        // Outer: odd vs even; inner (odd side): multiples of 4 plus 1 vs rest.
        let mut b = ProgramBuilder::new("nested");
        let outer_then = b.label();
        let outer_join = b.label();
        let inner_then = b.label();
        let inner_join = b.label();
        b.and(Reg(4), Reg(1), Operand::Imm(1));
        b.bra_div_nz(Reg(4), outer_then, outer_join);
        b.addi(Reg(2), Reg(1), 1000); // even lanes
        b.jmp_to(outer_join);
        b.bind(outer_then);
        b.and(Reg(5), Reg(1), Operand::Imm(2));
        b.bra_div_nz(Reg(5), inner_then, inner_join);
        b.addi(Reg(2), Reg(1), 10); // lanes % 4 == 1
        b.jmp_to(inner_join);
        b.bind(inner_then);
        b.addi(Reg(2), Reg(1), 20); // lanes % 4 == 3
        b.bind(inner_join);
        b.bind(outer_join);
        b.addi(Reg(3), Reg(2), 1);
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        let mut w = WarpInit::zeroed();
        w.set_per_lane(1, |l| l as u64);
        rig.add_warp(w);
        rig.run(500);
        assert!(rig.sm.is_idle());
        for lane in 0..32u64 {
            let want = match lane % 4 {
                0 | 2 => lane + 1000 + 1,
                1 => lane + 10 + 1,
                _ => lane + 20 + 1,
            };
            assert_eq!(rig.sm.warps[0].regs[lane as usize][3], want, "lane {lane}");
        }
        assert_eq!(rig.sm.stats().divergent_branches, 2);
    }

    #[test]
    fn uniform_divergent_branch_does_not_split() {
        let mut b = ProgramBuilder::new("uni");
        let then_l = b.label();
        let join_l = b.label();
        b.ldi(Reg(4), 1); // all lanes nonzero: uniform taken
        b.bra_div_nz(Reg(4), then_l, join_l);
        b.ldi(Reg(2), 7); // skipped entirely
        b.jmp_to(join_l);
        b.bind(then_l);
        b.ldi(Reg(2), 9);
        b.bind(join_l);
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.add_warp(WarpInit::zeroed());
        rig.run(200);
        assert_eq!(rig.sm.warps[0].regs[0][2], 9);
        assert_eq!(rig.sm.stats().divergent_branches, 0);
    }

    #[test]
    fn divergence_costs_control_stalls() {
        // The same per-lane computation via Sel (predication) vs BraDiv.
        let build = |divergent: bool| {
            let mut b = ProgramBuilder::new("cmp");
            b.and(Reg(4), Reg(1), Operand::Imm(1));
            if divergent {
                let then_l = b.label();
                let join_l = b.label();
                b.bra_div_nz(Reg(4), then_l, join_l);
                b.addi(Reg(2), Reg(1), 100);
                b.jmp_to(join_l);
                b.bind(then_l);
                b.shl(Reg(2), Reg(1), Operand::Imm(1));
                b.bind(join_l);
            } else {
                b.addi(Reg(5), Reg(1), 100);
                b.shl(Reg(6), Reg(1), Operand::Imm(1));
                b.sel(Reg(2), Reg(4), Reg(6), Reg(5));
            }
            b.exit();
            b.build().unwrap()
        };
        let mut runs = Vec::new();
        for divergent in [false, true] {
            let mut rig = Rig::new(build(divergent));
            let mut w = WarpInit::zeroed();
            w.set_per_lane(1, |l| l as u64);
            rig.add_warp(w);
            rig.run(300);
            // Lane 5 computes 10 on both sides of the branch (5+5 or 5<<1).
            assert_eq!(rig.sm.warps[0].regs[5][2], 10);
            runs.push(rig.breakdown());
        }
        assert!(
            runs[1].cycles(StallKind::Control) > runs[0].cycles(StallKind::Control),
            "divergence must show up as control stalls: {:?} vs {:?}",
            runs[1].cycles(StallKind::Control),
            runs[0].cycles(StallKind::Control),
        );
    }

    #[test]
    fn trace_records_the_last_issued_instructions() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 1);
        b.addi(Reg(1), Reg(1), 1);
        b.addi(Reg(1), Reg(1), 2);
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.sm.set_trace_capacity(2);
        rig.add_warp(WarpInit::zeroed());
        rig.run(100);
        let trace: Vec<_> = rig.sm.trace().collect();
        assert_eq!(trace.len(), 2, "ring buffer keeps only the tail");
        assert_eq!(trace[0].pc, 2);
        assert!(trace[0].text.contains("add"));
        assert_eq!(trace[1].pc, 3);
        assert!(trace[1].text.contains("exit"));
    }

    #[test]
    fn tracing_is_off_by_default() {
        let mut b = ProgramBuilder::new("t");
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.add_warp(WarpInit::zeroed());
        rig.run(50);
        assert_eq!(rig.sm.trace().count(), 0);
    }

    #[test]
    fn warp_profiles_tally_per_warp_classifications() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 0x1000);
        b.ld_global(Reg(2), Reg(1), 0);
        b.addi(Reg(3), Reg(2), 1); // stalls on the load
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.add_warp(WarpInit::zeroed());
        rig.run(200);
        let p = rig.sm.warp_profiles()[0];
        assert_eq!(p.instructions, 4);
        assert!(p.classified(StallKind::MemoryData) > 0);
        assert!(p.total_considered() >= p.instructions);
    }

    #[test]
    fn straggler_warps_are_identifiable() {
        // Warp 1 loops 30x; warp 0 exits immediately. Warp 1's profile must
        // show far more activity.
        let mut b = ProgramBuilder::new("t");
        let skip = b.label();
        b.bra_z(Reg(1), skip);
        let top = b.here();
        b.subi(Reg(1), Reg(1), 1);
        b.bra_nz(Reg(1), top);
        b.bind(skip);
        b.exit();
        let p = b.build().unwrap();
        let mut rig = Rig::new(p);
        let w0 = WarpInit::zeroed();
        let mut w1 = WarpInit::zeroed();
        w1.set_uniform(1, 30);
        rig.sm.add_block(BlockInit { block_id: 0, warps: vec![w0, w1] });
        rig.run(500);
        let profiles = rig.sm.warp_profiles();
        assert!(profiles[1].instructions > profiles[0].instructions * 5);
    }

    #[test]
    fn relaxed_atomic_does_not_sync_block() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 0x300);
        b.atom_add(Reg(2), Reg(1), Operand::Imm(5), MemSem::Relaxed);
        b.ldi(Reg(4), 7); // independent work can issue while atomic in flight
        b.addi(Reg(3), Reg(2), 0); // dependent -> memory data stall
        b.exit();
        let mut rig = Rig::new(b.build().unwrap());
        rig.add_warp(WarpInit::zeroed());
        rig.run(300);
        assert_eq!(rig.gmem.read_word(0x300), 5);
        let bd = rig.breakdown();
        assert_eq!(bd.cycles(StallKind::Synchronization), 0, "{bd:?}");
        assert!(bd.cycles(StallKind::MemoryData) > 0);
    }
}
