//! SM pipeline configuration.

use gsi_core::CyclePriority;

/// Warp scheduling policy of the issue stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Greedy-then-oldest: keep issuing from the same warp until it stalls,
    /// then fall back to the warp that has waited longest (GPGPU-Sim's GTO).
    Gto,
    /// Loose round-robin: rotate the starting warp each cycle.
    RoundRobin,
}

/// Pipeline parameters of one SM.
///
/// Defaults model a GTX-480-class SM as configured by the paper: dual
/// issue, up to 48 resident warps in 8 blocks, a short ALU pipeline, a
/// long-latency SFU, and a 2-cycle instruction-buffer refill after taken
/// branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmConfig {
    /// Instructions issued per cycle (from distinct warps).
    pub issue_width: usize,
    /// Maximum resident warps.
    pub max_warps: usize,
    /// Maximum resident thread blocks.
    pub max_blocks: usize,
    /// Result latency of ALU-class operations.
    pub alu_latency: u64,
    /// Result latency of SFU-class operations (mul/div).
    pub sfu_latency: u64,
    /// ALU instructions accepted per cycle.
    pub alu_per_cycle: u32,
    /// SFU instructions accepted per cycle.
    pub sfu_per_cycle: u32,
    /// Cycles the instruction buffer is empty after a taken branch.
    pub branch_refetch: u64,
    /// Scheduling policy.
    pub scheduler: SchedPolicy,
    /// The Algorithm-2 selection order used when classifying stall cycles
    /// (the paper's memory-focused order by default; see
    /// [`CyclePriority`]).
    pub cycle_priority: CyclePriority,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            issue_width: 2,
            max_warps: 48,
            max_blocks: 8,
            alu_latency: 4,
            sfu_latency: 16,
            alu_per_cycle: 2,
            sfu_per_cycle: 1,
            branch_refetch: 2,
            scheduler: SchedPolicy::Gto,
            cycle_priority: CyclePriority::memory_focused(),
        }
    }
}

gsi_json::json_unit_enum!(SchedPolicy { Gto, RoundRobin });

gsi_json::json_struct!(SmConfig {
    issue_width,
    max_warps,
    max_blocks,
    alu_latency,
    sfu_latency,
    alu_per_cycle,
    sfu_per_cycle,
    branch_refetch,
    scheduler,
    cycle_priority,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SmConfig::default();
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.max_warps, 48);
        assert!(c.sfu_latency > c.alu_latency);
        assert_eq!(c.scheduler, SchedPolicy::Gto);
    }
}
