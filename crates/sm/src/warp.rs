//! Warp state: lockstep lanes, per-lane registers, and the scoreboard.

use gsi_core::RequestId;
use gsi_isa::{NUM_REGS, WARP_LANES};

/// Initial state of one warp at block launch.
#[derive(Debug, Clone)]
pub struct WarpInit {
    /// Per-lane initial register files (`[lane][reg]`).
    pub regs: Vec<[u64; NUM_REGS]>,
    /// Bitmask of registers the launch initializer explicitly wrote (via
    /// [`set_uniform`](Self::set_uniform) /
    /// [`set_per_lane`](Self::set_per_lane)). The static analyzer treats
    /// only these as initialized; everything else is architectural zero.
    pub set_mask: u32,
}

impl WarpInit {
    /// A warp whose lanes all start with zeroed registers.
    pub fn zeroed() -> Self {
        WarpInit { regs: vec![[0; NUM_REGS]; WARP_LANES], set_mask: 0 }
    }

    /// Set register `reg` of every lane to `value`.
    pub fn set_uniform(&mut self, reg: u8, value: u64) {
        for lane in &mut self.regs {
            lane[reg as usize] = value;
        }
        self.set_mask |= 1 << reg;
    }

    /// Set register `reg` of each lane from a function of the lane index.
    pub fn set_per_lane(&mut self, reg: u8, f: impl Fn(usize) -> u64) {
        for (i, lane) in self.regs.iter_mut().enumerate() {
            lane[reg as usize] = f(i);
        }
        self.set_mask |= 1 << reg;
    }
}

/// One SIMT reconvergence-stack entry: when the running side's pc reaches
/// `rpc`, execution switches to (`mask`, `pc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SimtEntry {
    pub rpc: usize,
    pub mask: u32,
    pub pc: usize,
    /// Pc of the divergent branch that pushed this entry, so control
    /// stalls at the redirect can be blamed on the branch.
    pub origin: u32,
}

gsi_json::json_struct!(SimtEntry { rpc, mask, pc, origin });

/// One resident warp.
#[derive(Debug, Clone)]
pub(crate) struct Warp {
    /// Index of the owning block in the SM's block table.
    pub block: usize,
    pub pc: usize,
    /// True until the warp executes `exit`.
    pub active: bool,
    /// Per-lane register files.
    pub regs: Vec<[u64; NUM_REGS]>,
    /// Outstanding load-line count per destination register.
    pub pending_loads: [u8; NUM_REGS],
    /// Outstanding `(request token, issuing load pc)` pairs per
    /// destination register, for stall attribution and blame.
    pub pending_reqs: Vec<Vec<(RequestId, u32)>>,
    /// Cycle at which each register's pending compute result is ready.
    pub ready_at: [u64; NUM_REGS],
    /// An acquire/release atomic is in flight: the warp is blocked for
    /// synchronization.
    pub sync_pending: bool,
    /// The warp is waiting at a thread-block barrier.
    pub at_barrier: bool,
    /// The instruction buffer refills until this cycle after a taken branch.
    pub ibuffer_ready_at: u64,
    /// Last cycle this warp issued (for greedy-then-oldest scheduling).
    pub last_issue: u64,
    /// Lanes currently executing (bit per lane).
    pub active_mask: u32,
    /// SIMT reconvergence stack for divergent branches.
    pub simt_stack: Vec<SimtEntry>,
    /// Key of the cached lane-address computation: `(pc, last_issue,
    /// active_mask)`. All three are frozen while a structurally rejected
    /// access replays (sources can only change through an issue or a SIMT
    /// pop, and both change the key), so the per-lane address walk runs
    /// once per instruction instead of once per replay attempt.
    pub addr_cache_key: Option<(usize, u64, u32)>,
    /// Cached `(lane, byte address)` pairs for the key above.
    pub addr_cache_pairs: Vec<(usize, u64)>,
    /// Last-writer table: pc of the instruction that last defined each
    /// register ([`gsi_blame::UNKNOWN_PC`] for launch-initialized state).
    pub reg_writer: [u32; NUM_REGS],
    /// Pc of the last taken branch / SIMT redirect, blamed for control
    /// (refetch) stalls.
    pub last_branch_pc: u32,
    /// Pc of the acquire/release atomic or barrier the warp is blocked on.
    pub sync_pc: u32,
}

impl Warp {
    pub fn new(block: usize, init: WarpInit) -> Self {
        assert_eq!(init.regs.len(), WARP_LANES, "a warp has exactly {WARP_LANES} lanes");
        Warp {
            block,
            pc: 0,
            active: true,
            regs: init.regs,
            pending_loads: [0; NUM_REGS],
            pending_reqs: vec![Vec::new(); NUM_REGS],
            ready_at: [0; NUM_REGS],
            sync_pending: false,
            at_barrier: false,
            ibuffer_ready_at: 0,
            last_issue: 0,
            active_mask: u32::MAX,
            simt_stack: Vec::new(),
            addr_cache_key: None,
            addr_cache_pairs: Vec::new(),
            reg_writer: [gsi_blame::UNKNOWN_PC; NUM_REGS],
            last_branch_pc: gsi_blame::UNKNOWN_PC,
            sync_pc: gsi_blame::UNKNOWN_PC,
        }
    }

    /// First active lane (the leader for scalar operations like atomics).
    ///
    /// # Panics
    ///
    /// Panics when no lane is active (an SM logic error).
    pub fn leader(&self) -> usize {
        assert!(self.active_mask != 0, "warp with no active lanes");
        self.active_mask.trailing_zeros() as usize
    }

    /// The first outstanding request blocking register `reg`, if any.
    pub fn blocking_req(&self, reg: u8) -> Option<RequestId> {
        self.pending_reqs[reg as usize].first().map(|&(req, _)| req)
    }

    /// Pc of the load whose first outstanding request blocks `reg`.
    pub fn blocking_req_pc(&self, reg: u8) -> Option<u32> {
        self.pending_reqs[reg as usize].first().map(|&(_, pc)| pc)
    }

    /// Record an outstanding load line for `reg`, issued by the load at
    /// `pc`.
    pub fn add_pending_load(&mut self, reg: u8, req: RequestId, pc: u32) {
        self.pending_loads[reg as usize] += 1;
        self.pending_reqs[reg as usize].push((req, pc));
    }

    /// A load line completed for `reg`.
    pub fn complete_load(&mut self, reg: u8, req: RequestId) {
        let r = reg as usize;
        if let Some(pos) = self.pending_reqs[r].iter().position(|&(x, _)| x == req) {
            self.pending_reqs[r].remove(pos);
            self.pending_loads[r] -= 1;
        }
    }

    /// True when `reg` has a data hazard from an outstanding load.
    pub fn load_pending(&self, reg: u8) -> bool {
        self.pending_loads[reg as usize] > 0
    }

    /// True when `reg`'s compute result is not ready at `now`.
    pub fn compute_pending(&self, reg: u8, now: u64) -> bool {
        self.ready_at[reg as usize] > now
    }
}

// The lane-address cache (`addr_cache_key` / `addr_cache_pairs`) is a pure
// memoization of warp-visible state and is deliberately excluded: a restored
// warp recomputes it on the next issue attempt.
impl gsi_json::ToJson for Warp {
    fn to_json(&self) -> gsi_json::Value {
        gsi_json::obj! {
            "block" => self.block,
            "pc" => self.pc,
            "active" => self.active,
            "regs" => self.regs.to_json(),
            "pending_loads" => self.pending_loads.to_json(),
            "pending_reqs" => self.pending_reqs.to_json(),
            "ready_at" => self.ready_at.to_json(),
            "sync_pending" => self.sync_pending,
            "at_barrier" => self.at_barrier,
            "ibuffer_ready_at" => self.ibuffer_ready_at,
            "last_issue" => self.last_issue,
            "active_mask" => self.active_mask,
            "simt_stack" => self.simt_stack.to_json(),
            "reg_writer" => self.reg_writer.to_json(),
            "last_branch_pc" => self.last_branch_pc,
            "sync_pc" => self.sync_pc
        }
    }
}

impl gsi_json::FromJson for Warp {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        Ok(Warp {
            block: v.read("block")?,
            pc: v.read("pc")?,
            active: v.read("active")?,
            regs: v.read("regs")?,
            pending_loads: v.read("pending_loads")?,
            pending_reqs: v.read("pending_reqs")?,
            ready_at: v.read("ready_at")?,
            sync_pending: v.read("sync_pending")?,
            at_barrier: v.read("at_barrier")?,
            ibuffer_ready_at: v.read("ibuffer_ready_at")?,
            last_issue: v.read("last_issue")?,
            active_mask: v.read("active_mask")?,
            simt_stack: v.read("simt_stack")?,
            addr_cache_key: None,
            addr_cache_pairs: Vec::new(),
            reg_writer: v.read("reg_writer")?,
            last_branch_pc: v.read("last_branch_pc")?,
            sync_pc: v.read("sync_pc")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_helpers() {
        let mut w = WarpInit::zeroed();
        w.set_uniform(3, 42);
        w.set_per_lane(4, |l| l as u64 * 2);
        assert_eq!(w.regs[0][3], 42);
        assert_eq!(w.regs[31][3], 42);
        assert_eq!(w.regs[5][4], 10);
    }

    #[test]
    fn scoreboard_load_tracking() {
        let mut w = Warp::new(0, WarpInit::zeroed());
        assert!(!w.load_pending(2));
        w.add_pending_load(2, RequestId(10), 7);
        w.add_pending_load(2, RequestId(11), 9);
        assert!(w.load_pending(2));
        assert_eq!(w.blocking_req(2), Some(RequestId(10)));
        assert_eq!(w.blocking_req_pc(2), Some(7));
        w.complete_load(2, RequestId(10));
        assert!(w.load_pending(2));
        assert_eq!(w.blocking_req(2), Some(RequestId(11)));
        assert_eq!(w.blocking_req_pc(2), Some(9));
        w.complete_load(2, RequestId(11));
        assert!(!w.load_pending(2));
        // Unknown completions are ignored.
        w.complete_load(2, RequestId(99));
        assert!(!w.load_pending(2));
    }

    #[test]
    fn compute_pending_window() {
        let mut w = Warp::new(0, WarpInit::zeroed());
        w.ready_at[5] = 10;
        assert!(w.compute_pending(5, 9));
        assert!(!w.compute_pending(5, 10));
    }

    #[test]
    fn leader_follows_the_mask() {
        let mut w = Warp::new(0, WarpInit::zeroed());
        assert_eq!(w.leader(), 0);
        w.active_mask = 0b1100;
        assert_eq!(w.leader(), 2);
        assert_ne!(w.active_mask & (1 << 3), 0);
        assert_eq!(w.active_mask & (1 << 0), 0);
    }

    #[test]
    #[should_panic(expected = "no active lanes")]
    fn empty_mask_panics() {
        let mut w = Warp::new(0, WarpInit::zeroed());
        w.active_mask = 0;
        w.leader();
    }

    #[test]
    #[should_panic(expected = "32 lanes")]
    fn wrong_lane_count_panics() {
        let init = WarpInit { regs: vec![[0; NUM_REGS]; 3], set_mask: 0 };
        Warp::new(0, init);
    }
}
