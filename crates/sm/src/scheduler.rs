//! Warp scheduling order for the issue stage.

use crate::config::SchedPolicy;

/// Computes the order in which warps are considered each cycle.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scheduler {
    /// Greedy warp for GTO: the warp that issued most recently.
    greedy: Option<usize>,
    /// Rotation offset for round-robin.
    rr_start: usize,
}

impl Scheduler {
    /// The order to consider warp indices `0..n` this cycle.
    ///
    /// `last_issue` gives, for each warp, the last cycle it issued (for the
    /// "oldest" half of greedy-then-oldest). Allocating reference for
    /// [`order_into`](Self::order_into), kept for the equivalence tests
    /// (the issue stage uses the scratch-buffer variant).
    #[cfg(test)]
    pub fn order(&self, policy: SchedPolicy, n: usize, last_issue: &[u64]) -> Vec<usize> {
        let mut out = Vec::new();
        self.order_into(policy, n, last_issue, &mut out);
        out
    }

    /// [`order`](Self::order) writing into a caller-provided buffer. `out`
    /// is cleared first. The unstable sort is deterministic here because
    /// the sort key includes the warp index, making every key distinct.
    /// Reference implementation over all `n` warps; the issue stage uses
    /// [`order_active_into`](Self::order_active_into), which the
    /// equivalence tests check against this.
    #[cfg(test)]
    pub fn order_into(
        &self,
        policy: SchedPolicy,
        n: usize,
        last_issue: &[u64],
        out: &mut Vec<usize>,
    ) {
        out.clear();
        match policy {
            SchedPolicy::Gto => {
                out.extend(0..n);
                // Oldest first: smallest last-issue cycle, ties by index.
                out.sort_unstable_by_key(|&w| (last_issue[w], w));
                if let Some(g) = self.greedy {
                    if g < n {
                        let pos = out.iter().position(|&w| w == g).expect("greedy in range");
                        out.remove(pos);
                        out.insert(0, g);
                    }
                }
            }
            SchedPolicy::RoundRobin => {
                out.extend((0..n).map(|i| (self.rr_start + i) % n.max(1)));
            }
        }
    }

    /// [`order_into`](Self::order_into) restricted to the live warps.
    ///
    /// `active` holds the live warp indices in ascending order and `keys[i]`
    /// is the last-issue cycle of `active[i]`. The result is exactly the
    /// full `order_into(policy, n, ..)` sequence with non-live warps
    /// removed — interchangeable with it, because the issue stage skips
    /// inactive warps anyway — computed in O(live) / O(live log live)
    /// instead of O(n), where n (warps ever dispatched) grows with every
    /// block a long grid streams through the SM:
    ///
    /// - GTO sorts by the distinct key `(last_issue, warp)`, so sorting the
    ///   live subset preserves the relative order the full sort would give,
    ///   and fronting the greedy warp only matters when it is live.
    /// - Round-robin emits `(rr_start + i) % n`, i.e. the indices `>=
    ///   rr_start` ascending then the rest; filtering that to a sorted live
    ///   list is a partition at `rr_start`.
    pub fn order_active_into(
        &self,
        policy: SchedPolicy,
        active: &[usize],
        keys: &[u64],
        out: &mut Vec<usize>,
    ) {
        debug_assert_eq!(active.len(), keys.len());
        debug_assert!(active.windows(2).all(|w| w[0] < w[1]), "live list must be ascending");
        out.clear();
        match policy {
            SchedPolicy::Gto => {
                out.extend(0..active.len());
                out.sort_unstable_by_key(|&i| (keys[i], active[i]));
                for slot in out.iter_mut() {
                    *slot = active[*slot];
                }
                if let Some(g) = self.greedy {
                    if let Some(pos) = out.iter().position(|&w| w == g) {
                        out.remove(pos);
                        out.insert(0, g);
                    }
                }
            }
            SchedPolicy::RoundRobin => {
                let p = active.partition_point(|&w| w < self.rr_start);
                out.extend_from_slice(&active[p..]);
                out.extend_from_slice(&active[..p]);
            }
        }
    }

    /// Record that `warp` issued this cycle (it becomes the greedy warp).
    pub fn issued(&mut self, warp: usize) {
        self.greedy = Some(warp);
    }

    /// Advance to the next cycle (rotates round-robin).
    pub fn next_cycle(&mut self, n: usize) {
        if n > 0 {
            self.rr_start = (self.rr_start + 1) % n;
        }
    }

    /// Advance `cycles` cycles at once — equivalent to that many
    /// [`next_cycle`](Self::next_cycle) calls (the event engine's bulk
    /// advance over a skipped stretch).
    pub fn advance_cycles(&mut self, cycles: u64, n: usize) {
        if n > 0 {
            self.rr_start = (self.rr_start + (cycles % n as u64) as usize) % n;
        }
    }
}

gsi_json::json_struct!(Scheduler { greedy, rr_start });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gto_prefers_greedy_then_oldest() {
        let mut s = Scheduler::default();
        let last = vec![5, 1, 3];
        assert_eq!(s.order(SchedPolicy::Gto, 3, &last), vec![1, 2, 0]);
        s.issued(2);
        assert_eq!(s.order(SchedPolicy::Gto, 3, &last), vec![2, 1, 0]);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::default();
        let last = vec![0; 3];
        assert_eq!(s.order(SchedPolicy::RoundRobin, 3, &last), vec![0, 1, 2]);
        s.next_cycle(3);
        assert_eq!(s.order(SchedPolicy::RoundRobin, 3, &last), vec![1, 2, 0]);
        s.next_cycle(3);
        assert_eq!(s.order(SchedPolicy::RoundRobin, 3, &last), vec![2, 0, 1]);
    }

    #[test]
    fn empty_warp_set() {
        let s = Scheduler::default();
        assert!(s.order(SchedPolicy::Gto, 0, &[]).is_empty());
        assert!(s.order(SchedPolicy::RoundRobin, 0, &[]).is_empty());
    }

    #[test]
    fn order_into_matches_order_and_reuses_the_buffer() {
        let mut s = Scheduler::default();
        s.issued(1);
        let last = vec![7, 2, 9, 4];
        let mut buf = vec![99; 16]; // stale contents must be discarded
        for policy in [SchedPolicy::Gto, SchedPolicy::RoundRobin] {
            s.order_into(policy, 4, &last, &mut buf);
            assert_eq!(buf, s.order(policy, 4, &last));
        }
    }

    #[test]
    fn order_active_matches_full_order_filtered() {
        // Pseudo-random last-issue table over 12 warps; warps 2, 5, 6 and
        // 9 have exited. The live-only order must equal the full order with
        // the dead warps removed, for every policy, rotation offset, and
        // greedy choice (live, dead, or none).
        let n = 12;
        let last: Vec<u64> = (0..n as u64).map(|w| (w * 7 + 3) % 5).collect();
        let dead = [2usize, 5, 6, 9];
        let active: Vec<usize> = (0..n).filter(|w| !dead.contains(w)).collect();
        let keys: Vec<u64> = active.iter().map(|&w| last[w]).collect();
        let mut full = Vec::new();
        let mut live = Vec::new();
        for policy in [SchedPolicy::Gto, SchedPolicy::RoundRobin] {
            for greedy in std::iter::once(None).chain((0..n).map(Some)) {
                let mut s = Scheduler::default();
                if let Some(g) = greedy {
                    s.issued(g);
                }
                for _ in 0..n {
                    s.order_into(policy, n, &last, &mut full);
                    full.retain(|w| active.contains(w));
                    s.order_active_into(policy, &active, &keys, &mut live);
                    assert_eq!(full, live, "policy {policy:?}, greedy {greedy:?}");
                    s.next_cycle(n);
                }
            }
        }
    }

    #[test]
    fn gto_with_stale_greedy_out_of_range() {
        let mut s = Scheduler::default();
        s.issued(5);
        let last = vec![0, 0];
        // Greedy index 5 no longer exists; order falls back to oldest.
        assert_eq!(s.order(SchedPolicy::Gto, 2, &last), vec![0, 1]);
    }
}
