//! Warp scheduling order for the issue stage.

use crate::config::SchedPolicy;

/// Computes the order in which warps are considered each cycle.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scheduler {
    /// Greedy warp for GTO: the warp that issued most recently.
    greedy: Option<usize>,
    /// Rotation offset for round-robin.
    rr_start: usize,
}

impl Scheduler {
    /// The order to consider warp indices `0..n` this cycle.
    ///
    /// `last_issue` gives, for each warp, the last cycle it issued (for the
    /// "oldest" half of greedy-then-oldest). Allocating reference for
    /// [`order_into`](Self::order_into), kept for the equivalence tests
    /// (the issue stage uses the scratch-buffer variant).
    #[cfg(test)]
    pub fn order(&self, policy: SchedPolicy, n: usize, last_issue: &[u64]) -> Vec<usize> {
        let mut out = Vec::new();
        self.order_into(policy, n, last_issue, &mut out);
        out
    }

    /// [`order`](Self::order) writing into a caller-provided buffer, so the
    /// per-cycle issue stage can reuse one allocation. `out` is cleared
    /// first. The unstable sort is deterministic here because the sort key
    /// includes the warp index, making every key distinct.
    pub fn order_into(
        &self,
        policy: SchedPolicy,
        n: usize,
        last_issue: &[u64],
        out: &mut Vec<usize>,
    ) {
        out.clear();
        match policy {
            SchedPolicy::Gto => {
                out.extend(0..n);
                // Oldest first: smallest last-issue cycle, ties by index.
                out.sort_unstable_by_key(|&w| (last_issue[w], w));
                if let Some(g) = self.greedy {
                    if g < n {
                        let pos = out.iter().position(|&w| w == g).expect("greedy in range");
                        out.remove(pos);
                        out.insert(0, g);
                    }
                }
            }
            SchedPolicy::RoundRobin => {
                out.extend((0..n).map(|i| (self.rr_start + i) % n.max(1)));
            }
        }
    }

    /// Record that `warp` issued this cycle (it becomes the greedy warp).
    pub fn issued(&mut self, warp: usize) {
        self.greedy = Some(warp);
    }

    /// Advance to the next cycle (rotates round-robin).
    pub fn next_cycle(&mut self, n: usize) {
        if n > 0 {
            self.rr_start = (self.rr_start + 1) % n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gto_prefers_greedy_then_oldest() {
        let mut s = Scheduler::default();
        let last = vec![5, 1, 3];
        assert_eq!(s.order(SchedPolicy::Gto, 3, &last), vec![1, 2, 0]);
        s.issued(2);
        assert_eq!(s.order(SchedPolicy::Gto, 3, &last), vec![2, 1, 0]);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::default();
        let last = vec![0; 3];
        assert_eq!(s.order(SchedPolicy::RoundRobin, 3, &last), vec![0, 1, 2]);
        s.next_cycle(3);
        assert_eq!(s.order(SchedPolicy::RoundRobin, 3, &last), vec![1, 2, 0]);
        s.next_cycle(3);
        assert_eq!(s.order(SchedPolicy::RoundRobin, 3, &last), vec![2, 0, 1]);
    }

    #[test]
    fn empty_warp_set() {
        let s = Scheduler::default();
        assert!(s.order(SchedPolicy::Gto, 0, &[]).is_empty());
        assert!(s.order(SchedPolicy::RoundRobin, 0, &[]).is_empty());
    }

    #[test]
    fn order_into_matches_order_and_reuses_the_buffer() {
        let mut s = Scheduler::default();
        s.issued(1);
        let last = vec![7, 2, 9, 4];
        let mut buf = vec![99; 16]; // stale contents must be discarded
        for policy in [SchedPolicy::Gto, SchedPolicy::RoundRobin] {
            s.order_into(policy, 4, &last, &mut buf);
            assert_eq!(buf, s.order(policy, 4, &last));
        }
    }

    #[test]
    fn gto_with_stale_greedy_out_of_range() {
        let mut s = Scheduler::default();
        s.issued(5);
        let last = vec![0, 0];
        // Greedy index 5 no longer exists; order falls back to oldest.
        assert_eq!(s.order(SchedPolicy::Gto, 2, &last), vec![0, 1]);
    }
}
