//! # gsi-sm — the streaming multiprocessor pipeline model
//!
//! A cycle-level model of a GPU SM in the style the GSI paper instruments:
//! thread blocks of lockstep warps, a scoreboarded dual-issue stage, a
//! greedy-then-oldest (or round-robin) warp scheduler, an instruction
//! buffer with a refetch penalty after taken branches, ALU/SFU compute
//! pipelines, and a load/store unit fronted by [`gsi_mem::CoreMemUnit`].
//!
//! The issue stage is where GSI lives: every cycle, every resident warp's
//! next instruction is classified with Algorithm 1
//! ([`gsi_core::classify_instruction`]), the cycle verdict is produced with
//! Algorithm 2 ([`gsi_core::judge_cycle`]), and the verdict is recorded in
//! the SM's [`gsi_core::StallCollector`].
//!
//! The SM is driven by `gsi-sim`, which owns the global memory, the mesh,
//! and the shared L2; see that crate for a wired system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod config;
mod scheduler;
mod sm;
mod warp;

pub use block::BlockInit;
pub use config::{SchedPolicy, SmConfig};
pub use sm::{SmCore, SmStats, SmWake, TraceEntry, WarpProfile, WarpSnapshot};
pub use warp::WarpInit;
