//! Adversarial property suite for gsi-json, driven by a splitmix64 PRNG.
//!
//! The serving layer feeds this parser untrusted socket bytes and keys its
//! content-addressed result cache on the canonical (compact) encoding, so
//! three properties are load-bearing:
//!
//! 1. every randomly generated value survives `parse ∘ print` unchanged,
//! 2. malformed byte strings never panic the parser — they only `Err`,
//! 3. the canonical encoding is stable: equal values print to equal bytes,
//!    and re-parsing the canonical form re-prints the same bytes.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi_json::Value;

/// The splitmix64 generator — the same stream function the simulator's
/// chaos engine uses, so failures reproduce from a printed seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random finite f64: random bit patterns, rejecting NaN/inf (non-finite
/// serializes as `null` by documented policy, so it cannot round-trip).
fn finite_f64(rng: &mut Rng) -> f64 {
    loop {
        let x = f64::from_bits(rng.next());
        if x.is_finite() {
            return x;
        }
    }
}

/// A random string mixing plain ASCII, escapes, control characters, and
/// astral-plane code points (surrogate-pair escapes on the wire).
fn random_string(rng: &mut Rng) -> String {
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| match rng.below(6) {
            0 => char::from(b'a' + (rng.below(26) as u8)),
            1 => ['"', '\\', '/', '\n', '\r', '\t'][rng.below(6) as usize],
            2 => char::from_u32(rng.below(0x20) as u32).unwrap(),
            3 => '\u{263a}',
            4 => '\u{1f600}',
            _ => char::from(b' ' + (rng.below(95) as u8)),
        })
        .collect()
}

/// A random JSON value of bounded depth. Negative integers generate as
/// `I64` and non-negative as `U64`, matching the parser's classification so
/// the round trip compares equal structurally, not just numerically.
fn random_value(rng: &mut Rng, depth: usize) -> Value {
    let scalar = depth == 0 || rng.below(3) == 0;
    if scalar {
        match rng.below(6) {
            0 => Value::Null,
            1 => Value::Bool(rng.below(2) == 0),
            2 => Value::U64(rng.next()),
            3 => Value::I64(-((rng.below(1 << 62) as i64) + 1)),
            4 => Value::F64(finite_f64(rng)),
            _ => Value::Str(random_string(rng)),
        }
    } else if rng.below(2) == 0 {
        let n = rng.below(5) as usize;
        Value::Array((0..n).map(|_| random_value(rng, depth - 1)).collect())
    } else {
        let n = rng.below(5) as usize;
        Value::Object(
            (0..n)
                .map(|i| (format!("k{i}_{}", random_string(rng)), random_value(rng, depth - 1)))
                .collect(),
        )
    }
}

#[test]
fn random_values_round_trip_compact_and_pretty() {
    let mut rng = Rng(0x5EED_0001);
    for case in 0..2000 {
        let v = random_value(&mut rng, 5);
        let compact = v.to_string();
        let back = Value::parse(&compact).unwrap_or_else(|e| panic!("case {case}: {e}\n{compact}"));
        assert_eq!(back, v, "case {case} compact round trip\n{compact}");
        let pretty = v.to_string_pretty();
        let back = Value::parse(&pretty).unwrap_or_else(|e| panic!("case {case}: {e}\n{pretty}"));
        assert_eq!(back, v, "case {case} pretty round trip");
    }
}

#[test]
fn canonical_encoding_is_stable() {
    // Cache keys are the compact encoding: printing must be a pure function
    // of the value (same value → same bytes, across clones and across a
    // parse round trip of the canonical form).
    let mut rng = Rng(0x5EED_0002);
    for case in 0..1000 {
        let v = random_value(&mut rng, 4);
        let canonical = v.to_string();
        assert_eq!(v.to_string(), canonical, "case {case}: print is not pure");
        assert_eq!(v.clone().to_string(), canonical, "case {case}: clone changes encoding");
        let reparsed = Value::parse(&canonical).unwrap();
        assert_eq!(reparsed.to_string(), canonical, "case {case}: canonical form not a fixpoint");
    }
}

#[test]
fn malformed_bytes_never_panic_only_err() {
    let mut rng = Rng(0x5EED_0003);
    // Purely random byte soup (lossy-decoded — the parser takes &str).
    for _ in 0..2000 {
        let len = rng.below(64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = Value::parse(&text); // must return, never panic/abort
    }
    // Structure-shaped soup: random draws from JSON's alphabet, which hits
    // the container/keyword/number paths far more often.
    let alphabet = b"{}[]\",:.0123456789-+eEtruefalsnx \\u";
    for _ in 0..4000 {
        let len = rng.below(48) as usize;
        let bytes: Vec<u8> =
            (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = Value::parse(&text);
    }
    // Mutations of valid documents: flip one byte of a well-formed
    // encoding; the result must parse or fail cleanly, never panic.
    for case in 0..1000 {
        let v = random_value(&mut rng, 3);
        let mut bytes = v.to_string().into_bytes();
        if bytes.is_empty() {
            continue;
        }
        let i = rng.below(bytes.len() as u64) as usize;
        bytes[i] = rng.next() as u8;
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(parsed) = Value::parse(&text) {
            // If the mutation stayed valid, canonicalization must still be
            // idempotent. (Exact value equality can be lost legitimately: a
            // mutated exponent like `1e999` parses to f64 infinity, which
            // serializes as `null` by documented policy.)
            let canon = parsed.to_string();
            let reparsed = Value::parse(&canon).unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(reparsed.to_string(), canon, "case {case}: canonical form not a fixpoint");
        }
    }
    // Truncations of valid documents at every prefix length.
    let v = random_value(&mut rng, 4);
    let text = v.to_string();
    for end in 0..text.len() {
        if text.is_char_boundary(end) {
            let _ = Value::parse(&text[..end]);
        }
    }
}
