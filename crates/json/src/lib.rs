//! # GSI JSON — a dependency-free JSON layer
//!
//! The simulator runs in environments with no network access to a crates.io
//! registry, so configuration/report serialization cannot rely on external
//! crates. This crate provides the small JSON surface GSI needs:
//!
//! * [`Value`]: an ordered JSON document model (object keys keep insertion
//!   order, so reports render deterministically),
//! * [`Value::parse`] / [`Value::to_string`] / [`Value::to_string_pretty`]:
//!   a recursive-descent parser and writers,
//! * [`ToJson`] / [`FromJson`]: conversion traits with impls for the
//!   primitives and containers the simulator serializes,
//! * [`json_struct!`] and [`json_unit_enum!`]: derive-style macros for plain
//!   structs and C-like enums. Enums with payloads (e.g. the ISA's `Instr`)
//!   implement the traits by hand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A parsed or constructed JSON document.
///
/// Objects preserve insertion order (they are association lists, not maps):
/// the writer emits fields in the order they were pushed, which keeps
/// generated reports diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A number with a fractional part or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

/// Why a conversion or parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// A "missing field" error.
    pub fn missing(field: &str) -> Self {
        JsonError::new(format!("missing field `{field}`"))
    }

    /// A "wrong type" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        JsonError::new(format!("expected {what}, got {}", got.kind_name()))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a required field of an object.
    ///
    /// # Errors
    ///
    /// Returns a missing-field [`JsonError`] when the key is absent (or
    /// `self` is not an object).
    pub fn req(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key).ok_or_else(|| JsonError::missing(key))
    }

    /// Parse a required field of an object into `T`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the key is absent or the field fails to
    /// convert.
    pub fn read<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        T::from_json(self.req(key)?)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Insert or replace a field on an object, preserving field order for
    /// existing keys and appending new ones; a no-op on non-objects.
    pub fn set(&mut self, key: &str, value: impl ToJson) {
        if let Value::Object(fields) = self {
            let v = value.to_json();
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = v;
            } else {
                fields.push((key.to_string(), v));
            }
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Maximum container nesting depth [`Value::parse`] accepts.
    ///
    /// The parser is recursive-descent, so every `[`/`{` level consumes
    /// native stack; untrusted input like `[[[[…]]]]` could otherwise
    /// overflow the stack and abort the process. 128 levels is far deeper
    /// than any document the simulator produces (snapshots nest ~6 deep).
    pub const MAX_DEPTH: usize = 128;

    /// Parse a JSON document from text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax error, including
    /// trailing garbage after the document, or a document nesting containers
    /// deeper than [`Value::MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Serialize with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::I64(n) => {
                let _ = fmt::write(out, format_args!("{n}"));
            }
            Value::U64(n) => {
                let _ = fmt::write(out, format_args!("{n}"));
            }
            Value::F64(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact serialization (no whitespace); `value.to_string()` yields it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

/// Write `x` as JSON. Non-finite values (NaN, ±inf) have no JSON
/// representation and serialize as `null` — the same policy as serde_json —
/// so serialized output always re-parses (as [`Value::Null`], not the
/// original float). Code that must preserve non-finite values has to encode
/// them out-of-band before serializing.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `1.0f64` displays as "1"; keep a fractional marker so the value
        // re-parses as a float.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; emit null like other serializers do.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting level, capped at [`Value::MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    /// Enter one container level, failing once the recursion would exceed
    /// the depth cap (each level is a stack frame of `object`/`array`).
    fn descend(&mut self) -> Result<(), JsonError> {
        if self.depth >= Value::MAX_DEPTH {
            return Err(JsonError::new(format!(
                "nesting deeper than {} levels at byte {}",
                Value::MAX_DEPTH,
                self.pos
            )));
        }
        self.depth += 1;
        Ok(())
    }
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(JsonError::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => {
                Err(JsonError::new(format!("unexpected byte `{}` at {}", b as char, self.pos)))
            }
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.descend()?;
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.descend()?;
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(JsonError::new(format!("expected `,` or `]` at byte {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| JsonError::new("invalid \\u escape"))?);
                        }
                        b => {
                            return Err(JsonError::new(format!("invalid escape `\\{}`", b as char)))
                        }
                    }
                }
                Some(_) => return Err(JsonError::new("control character in string")),
                None => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| JsonError::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| JsonError::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| JsonError::new("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'+' | b'-' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| JsonError::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| JsonError::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| JsonError::new(format!("bad number `{text}`")))
        }
    }
}

/// Convert a Rust value into a JSON [`Value`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

/// Reconstruct a Rust value from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Parse `self` out of a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the first missing field or type
    /// mismatch.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

macro_rules! impl_unsigned {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = v.as_u64().ok_or_else(|| JsonError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| JsonError::new("integer out of range"))
            }
        }
    )+};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = v.as_i64().ok_or_else(|| JsonError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| JsonError::new("integer out of range"))
            }
        }
    )+};
}
impl_signed!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::F64(*self)
    }
}
impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::expected("number", v))
    }
}

impl ToJson for () {
    fn to_json(&self) -> Value {
        Value::Null
    }
}
impl FromJson for () {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(()),
            other => Err(JsonError::expected("null", other)),
        }
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::expected("bool", v))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError::expected("string", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}
impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::expected("array", v))?
            .iter()
            .map(FromJson::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson + fmt::Debug, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::new(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let items = v.as_array().ok_or_else(|| JsonError::expected("array", v))?;
        if items.len() != 2 {
            return Err(JsonError::new("expected 2-element array"));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

/// Implement [`ToJson`]/[`FromJson`] for a struct with named fields.
///
/// Must be invoked somewhere the fields are visible (the defining module for
/// private fields). Serializes as an object with one entry per field, in
/// declaration order.
///
/// ```
/// struct Point { x: u64, y: u64 }
/// gsi_json::json_struct!(Point { x, y });
/// # use gsi_json::{FromJson, ToJson};
/// let p = Point { x: 1, y: 2 };
/// let back = Point::from_json(&p.to_json()).unwrap();
/// assert_eq!(back.x, 1);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($T:ident { $($f:ident),+ $(,)? }) => {
        impl $crate::ToJson for $T {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($f).to_string(), $crate::ToJson::to_json(&self.$f)),)+
                ])
            }
        }
        impl $crate::FromJson for $T {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                Ok($T {
                    $($f: $crate::FromJson::from_json(
                        v.get(stringify!($f))
                            .ok_or_else(|| $crate::JsonError::missing(stringify!($f)))?,
                    )?,)+
                })
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for a C-like enum (unit variants only).
/// Serializes as the variant name string.
///
/// ```
/// #[derive(Debug, PartialEq)]
/// enum Mode { Fast, Slow }
/// gsi_json::json_unit_enum!(Mode { Fast, Slow });
/// # use gsi_json::{FromJson, ToJson};
/// assert_eq!(Mode::from_json(&Mode::Fast.to_json()).unwrap(), Mode::Fast);
/// ```
#[macro_export]
macro_rules! json_unit_enum {
    ($T:ident { $($V:ident),+ $(,)? }) => {
        impl $crate::ToJson for $T {
            fn to_json(&self) -> $crate::Value {
                let name = match self {
                    $($T::$V => stringify!($V),)+
                };
                $crate::Value::Str(name.to_string())
            }
        }
        impl $crate::FromJson for $T {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                let s = v
                    .as_str()
                    .ok_or_else(|| $crate::JsonError::expected("variant string", v))?;
                match s {
                    $(stringify!($V) => Ok($T::$V),)+
                    other => Err($crate::JsonError::new(format!(
                        "unknown {} variant `{other}`",
                        stringify!($T)
                    ))),
                }
            }
        }
    };
}

/// Build an object [`Value`] from `key => value` pairs (values are anything
/// implementing [`ToJson`]).
///
/// ```
/// let v = gsi_json::obj! { "name" => "gsi", "cycles" => 42u64 };
/// assert_eq!(v.get("cycles").unwrap().as_u64(), Some(42));
/// ```
#[macro_export]
macro_rules! obj {
    ($($k:expr => $v:expr),* $(,)?) => {
        $crate::Value::Object(vec![
            $(($k.to_string(), $crate::ToJson::to_json(&$v)),)*
        ])
    };
}

/// FNV-1a 128-bit content digest, rendered as 32 lowercase hex digits.
///
/// The workspace's standard content-address: the serve cache keys results
/// by the FNV-1a 128 of a request's canonical compact encoding, and the
/// shard journal checksums every record with it. 128 bits keeps an
/// accidental collision between two distinct documents out of reach; the
/// consumers that must be collision-*proof* (the serve cache) additionally
/// store and verify the full key.
///
/// ```
/// assert_eq!(gsi_json::fnv1a128(""), "6c62272e07bb014262b821756295c58d");
/// ```
pub fn fnv1a128(text: &str) -> String {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for b in text.as_bytes() {
        h ^= u128::from(*b);
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    format!("{h:032x}")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn number_classification() {
        assert_eq!(Value::parse("9").unwrap(), Value::U64(9));
        assert_eq!(Value::parse("-9").unwrap(), Value::I64(-9));
        assert_eq!(Value::parse("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(Value::parse("0.25").unwrap(), Value::F64(0.25));
        assert_eq!(Value::parse(&u64::MAX.to_string()).unwrap(), Value::U64(u64::MAX));
    }

    #[test]
    fn containers_round_trip() {
        let text = r#"{"a":[1,2,3],"b":{"nested":true},"c":"x","d":null}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(Value::parse(&v.to_string_pretty()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("nested").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = Value::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn string_escapes() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ unicode: \u{263a}";
        let v = Value::Str(s.to_string());
        let round = Value::parse(&v.to_string()).unwrap();
        assert_eq!(round.as_str(), Some(s));
        // Explicit \u escapes parse too.
        assert_eq!(Value::parse(r#""A☺""#).unwrap().as_str(), Some("A\u{263a}"));
        // Surrogate pair.
        assert_eq!(Value::parse(r#""😀""#).unwrap().as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn float_writer_keeps_fraction_marker() {
        assert_eq!(Value::F64(1.0).to_string(), "1.0");
        assert_eq!(Value::parse("1.0").unwrap(), Value::F64(1.0));
    }

    #[test]
    fn nesting_depth_is_capped() {
        // Exactly at the cap parses fine…
        let deep_ok = "[".repeat(Value::MAX_DEPTH) + &"]".repeat(Value::MAX_DEPTH);
        assert!(Value::parse(&deep_ok).is_ok());
        // …one level beyond returns an error instead of overflowing the
        // stack (the original bug: `[[[[…]]]]` from a socket killed the
        // process).
        let deep_bad = "[".repeat(Value::MAX_DEPTH + 1) + &"]".repeat(Value::MAX_DEPTH + 1);
        let err = Value::parse(&deep_bad).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Same cap for objects, and far deeper input stays an Err.
        let obj_bad = "{\"k\":".repeat(10_000) + "null" + &"}".repeat(10_000);
        assert!(Value::parse(&obj_bad).is_err());
        // Depth counts nesting, not total containers: wide documents with
        // many sibling arrays are unaffected.
        let wide = format!("[{}]", vec!["[]"; 1000].join(","));
        assert!(Value::parse(&wide).is_ok());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        // Pinned policy: NaN/±inf have no JSON form and must serialize as
        // `null` (valid JSON), never as `NaN`/`inf` (invalid JSON). The
        // round trip is lossy by design: it comes back as `Null`.
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = Value::F64(x).to_string();
            assert_eq!(text, "null");
            assert_eq!(Value::parse(&text).unwrap(), Value::Null);
            // Inside containers too, compact and pretty.
            let v = Value::Array(vec![Value::F64(x), Value::U64(1)]);
            assert_eq!(v.to_string(), "[null,1]");
            assert_eq!(Value::parse(&v.to_string_pretty()).unwrap().as_array().unwrap().len(), 2);
        }
        // Finite floats still round-trip exactly.
        let v = Value::F64(2.5);
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn trait_impls_round_trip() {
        let xs: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&xs.to_json()).unwrap(), xs);
        let arr: [u64; 4] = [9, 8, 7, 6];
        assert_eq!(<[u64; 4]>::from_json(&arr.to_json()).unwrap(), arr);
        let opt: Option<String> = Some("x".into());
        assert_eq!(Option::<String>::from_json(&opt.to_json()).unwrap(), opt);
        let none: Option<String> = None;
        assert_eq!(Option::<String>::from_json(&none.to_json()).unwrap(), none);
        let pair: (String, u64) = ("k".into(), 7);
        assert_eq!(<(String, u64)>::from_json(&pair.to_json()).unwrap(), pair);
        assert_eq!(i64::from_json(&(-5i64).to_json()).unwrap(), -5);
        assert_eq!(u8::from_json(&Value::U64(255)).unwrap(), 255);
        assert!(u8::from_json(&Value::U64(256)).is_err());
    }

    #[test]
    fn struct_and_enum_macros() {
        #[derive(Debug, PartialEq)]
        struct Inner {
            n: u64,
        }
        json_struct!(Inner { n });

        #[derive(Debug, PartialEq)]
        struct Outer {
            name: String,
            inner: Inner,
            tags: Vec<u8>,
        }
        json_struct!(Outer { name, inner, tags });

        #[derive(Debug, PartialEq)]
        enum Kind {
            A,
            B,
        }
        json_unit_enum!(Kind { A, B });

        let o = Outer { name: "x".into(), inner: Inner { n: 3 }, tags: vec![1, 2] };
        let v = o.to_json();
        let back = Outer::from_json(&v).unwrap();
        assert_eq!(back, o);
        assert_eq!(Kind::from_json(&Kind::B.to_json()).unwrap(), Kind::B);
        assert!(Kind::from_json(&Value::Str("C".into())).is_err());
        assert!(Outer::from_json(&Value::Object(vec![])).is_err());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 128 test vectors.
        assert_eq!(fnv1a128(""), "6c62272e07bb014262b821756295c58d");
        assert_eq!(fnv1a128("a"), "d228cb696f1a8caf78912b704e4a8964");
        assert_eq!(fnv1a128("foobar"), "343e1662793c64bf6f0d3597ba446f18");
    }

    #[test]
    fn obj_macro_builds_reports() {
        let v = obj! {
            "workload" => "uts",
            "cycles" => 100u64,
            "rate" => 2.5f64,
        };
        let text = v.to_string();
        assert!(text.contains("\"workload\":\"uts\""));
        assert_eq!(Value::parse(&text).unwrap(), v);
    }
}
