//! Workload registry: map a request's `(workload, scale)` names onto a
//! concrete system configuration, launch spec, and memory initializer.
//!
//! Every entry is a *single-kernel* launch — the unit the service can
//! pause, snapshot, and resume through [`Simulator::run_until`]. Workload
//! names follow the `gsi-run` CLI; the one semantic difference is `bfs`,
//! which here means the level-0 frontier kernel (the multi-level driver
//! loop lives in the workload crate and is not resumable as one unit).

use gsi_mem::Protocol;
use gsi_sim::{CycleEngine, LaunchSpec, Simulator, SystemConfig};
use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi_workloads::uts::{self, UtsConfig, Variant};
use gsi_workloads::{bfs, gemm, histogram, reduction, spmv, stencil};

/// Experiment scale: the paper-like sizes or the fast test sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes (sub-second), same qualitative shapes.
    Small,
    /// Paper-like sizes (seconds per run).
    Paper,
}

impl Scale {
    /// The wire name of the scale.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Workload names the service accepts.
pub const WORKLOADS: &[&str] = &[
    "uts",
    "utsd",
    "implicit-scratchpad",
    "implicit-dma",
    "implicit-stash",
    "spmv",
    "histogram",
    "stencil-tiled",
    "stencil-global",
    "reduction",
    "bfs",
    "gemm-tiled",
    "gemm-global",
];

/// A launch ready to run: the system configuration, the kernel launch
/// spec, and the global-memory initializer that must run before it.
pub struct Prepared {
    /// The system configuration the registry chose (overrides applied).
    pub config: SystemConfig,
    /// The single-kernel launch.
    pub spec: LaunchSpec,
    init: Box<dyn Fn(&mut Simulator)>,
}

impl Prepared {
    /// Initialize global memory for the launch.
    pub fn init_memory(&self, sim: &mut Simulator) {
        (self.init)(sim)
    }
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("config", &self.config)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

fn implicit_style(name: &str) -> Option<LocalMemStyle> {
    match name {
        "implicit-scratchpad" => Some(LocalMemStyle::Scratchpad),
        "implicit-dma" => Some(LocalMemStyle::ScratchpadDma),
        "implicit-stash" => Some(LocalMemStyle::Stash),
        _ => None,
    }
}

/// Upper bound for a request-supplied MSHR/store-buffer size. The queues
/// are allocated eagerly per SM, so an absurd wire value is a memory
/// bomb, not an experiment (the paper sweeps 8..=256).
pub const MAX_MSHR_ENTRIES: usize = 1 << 16;

/// Build the launch for a workload at a scale, with the request's knobs
/// applied on top of the registry defaults (implicit runs on one SM, the
/// rest on 4 at small scale / 15 at paper scale).
///
/// Every wire-supplied knob is range-checked here so untrusted requests
/// get an `Err` back instead of tripping a config assert on the runner.
pub fn prepare(
    workload: &str,
    scale: Scale,
    protocol: Protocol,
    engine: CycleEngine,
    sms: Option<usize>,
    mshr: Option<usize>,
) -> Result<Prepared, String> {
    let paper = scale == Scale::Paper;
    let default_sms = if workload.starts_with("implicit") {
        1
    } else if paper {
        15
    } else {
        4
    };
    let base = SystemConfig::paper();
    let sm_count = sms.unwrap_or(default_sms);
    let max_sms = base.mesh.nodes() - 1;
    if sm_count < 1 || sm_count > max_sms {
        return Err(format!(
            "sms {sm_count} is out of range: the mesh supports 1..={max_sms} SMs \
             (one node is reserved for the CPU)"
        ));
    }
    let mut sys = base.with_gpu_cores(sm_count).with_protocol(protocol).with_cycle_engine(engine);
    if let Some(m) = mshr {
        if m < gsi_mem::MIN_QUEUE_ENTRIES {
            return Err(format!(
                "mshr {m} is below the architectural minimum of {}",
                gsi_mem::MIN_QUEUE_ENTRIES
            ));
        }
        if m > MAX_MSHR_ENTRIES {
            return Err(format!("mshr {m} exceeds the supported maximum of {MAX_MSHR_ENTRIES}"));
        }
        sys = sys.with_mshr(m);
    }
    if let Some(style) = implicit_style(workload) {
        sys = sys.with_local_mem(style.mem_kind());
    }

    match workload {
        "uts" | "utsd" => {
            let cfg = if paper { UtsConfig::paper() } else { UtsConfig::small() };
            let variant =
                if workload == "uts" { Variant::Centralized } else { Variant::Decentralized };
            let lay = uts::UtsLayout::new(&cfg);
            let spec = uts::launch_spec(&cfg, lay, variant);
            Ok(Prepared {
                config: sys,
                spec,
                init: Box::new(move |sim| uts::init_memory(sim, &cfg, &lay)),
            })
        }
        w if w.starts_with("implicit") => {
            let style = implicit_style(w).expect("matched above");
            let cfg =
                if paper { ImplicitConfig::paper(style) } else { ImplicitConfig::small(style) };
            let spec = implicit::launch_spec(&cfg);
            Ok(Prepared {
                config: sys,
                spec,
                init: Box::new(move |sim| implicit::init_memory(sim, &cfg)),
            })
        }
        "spmv" => {
            let cfg = if paper { spmv::SpmvConfig::medium() } else { spmv::SpmvConfig::small() };
            let lay = spmv::SpmvLayout::new(&cfg);
            let spec = spmv::launch_spec(&cfg, lay);
            Ok(Prepared {
                config: sys,
                spec,
                init: Box::new(move |sim| spmv::init_memory(sim, &cfg, &lay)),
            })
        }
        "histogram" => {
            let cfg = if paper {
                histogram::HistogramConfig::contended()
            } else {
                histogram::HistogramConfig::small()
            };
            let lay = histogram::HistogramLayout::new(&cfg);
            let spec = histogram::launch_spec(&cfg, lay);
            Ok(Prepared {
                config: sys,
                spec,
                init: Box::new(move |sim| histogram::init_memory(sim, &cfg, &lay)),
            })
        }
        "stencil-tiled" | "stencil-global" => {
            let variant = if workload.ends_with("tiled") {
                stencil::StencilVariant::Tiled
            } else {
                stencil::StencilVariant::Global
            };
            let cfg = if paper {
                stencil::StencilConfig::medium(variant)
            } else {
                stencil::StencilConfig::small(variant)
            };
            let lay = stencil::StencilLayout::new(&cfg);
            let spec = stencil::launch_spec(&cfg, lay);
            Ok(Prepared {
                config: sys,
                spec,
                init: Box::new(move |sim| stencil::init_memory(sim, &cfg, &lay)),
            })
        }
        "reduction" => {
            let cfg = if paper {
                reduction::ReductionConfig::medium()
            } else {
                reduction::ReductionConfig::small()
            };
            let lay = reduction::ReductionLayout::new(&cfg);
            let spec = reduction::launch_spec(&cfg, lay);
            Ok(Prepared {
                config: sys,
                spec,
                init: Box::new(move |sim| reduction::init_memory(sim, &cfg, &lay)),
            })
        }
        "bfs" => {
            let cfg = if paper { bfs::BfsConfig::medium() } else { bfs::BfsConfig::small() };
            let lay = bfs::BfsLayout::new(&cfg);
            let spec = bfs::launch_spec(&cfg, &lay, 0);
            Ok(Prepared {
                config: sys,
                spec,
                init: Box::new(move |sim| bfs::init_memory(sim, &cfg, &lay)),
            })
        }
        "gemm-tiled" | "gemm-global" => {
            let variant = if workload.ends_with("tiled") {
                gemm::GemmVariant::Tiled
            } else {
                gemm::GemmVariant::Global
            };
            let cfg = if paper {
                gemm::GemmConfig::medium(variant)
            } else {
                gemm::GemmConfig::small(variant)
            };
            let lay = gemm::GemmLayout::new(&cfg);
            let spec = gemm::launch_spec(&cfg, lay);
            Ok(Prepared {
                config: sys,
                spec,
                init: Box::new(move |sim| gemm::init_memory(sim, &cfg, &lay)),
            })
        }
        // Test-only: a deliberately racy kernel (every warp of every block
        // stores to one uniform global address) so service tests can see
        // the whole-scenario race verifier's findings on the wire.
        #[cfg(test)]
        "__racy__" => {
            use gsi_isa::{Operand, ProgramBuilder, Reg};
            let mut b = ProgramBuilder::new("racy");
            b.ldi(Reg(1), 0x10_0000);
            b.st_global(Operand::Imm(1), Reg(1), 0);
            b.exit();
            let spec = LaunchSpec::new(b.build().expect("valid test kernel"), 2, 2);
            Ok(Prepared { config: sys, spec, init: Box::new(|_| {}) })
        }
        other => Err(format!("unknown workload {other:?}; known: {}", WORKLOADS.join(", "))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn every_registered_workload_prepares() {
        for w in WORKLOADS {
            let p = prepare(
                w,
                Scale::Small,
                Protocol::GpuCoherence,
                CycleEngine::default(),
                None,
                None,
            )
            .unwrap_or_else(|e| panic!("{w}: {e}"));
            assert!(p.spec.grid_blocks > 0, "{w}: empty grid");
        }
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let err = prepare(
            "matmul9000",
            Scale::Small,
            Protocol::GpuCoherence,
            CycleEngine::default(),
            None,
            None,
        )
        .unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn out_of_range_sms_is_refused_not_a_panic() {
        // 0 SMs and a full mesh (no node left for the CPU) both used to
        // trip SystemConfig asserts on the pool runner; they must be
        // plain request errors.
        for sms in [0, 16, usize::MAX] {
            let err = prepare(
                "spmv",
                Scale::Small,
                Protocol::GpuCoherence,
                CycleEngine::default(),
                Some(sms),
                None,
            )
            .unwrap_err();
            assert!(err.contains("out of range"), "sms={sms}: {err}");
        }
        // The full legal range prepares.
        for sms in [1, 15] {
            prepare(
                "spmv",
                Scale::Small,
                Protocol::GpuCoherence,
                CycleEngine::default(),
                Some(sms),
                None,
            )
            .unwrap_or_else(|e| panic!("sms={sms}: {e}"));
        }
    }

    #[test]
    fn oversized_mshr_is_refused() {
        let err = prepare(
            "spmv",
            Scale::Small,
            Protocol::GpuCoherence,
            CycleEngine::default(),
            None,
            Some(MAX_MSHR_ENTRIES + 1),
        )
        .unwrap_err();
        assert!(err.contains("exceeds the supported maximum"), "{err}");
    }

    #[test]
    fn undersized_mshr_is_refused() {
        let err = prepare(
            "spmv",
            Scale::Small,
            Protocol::GpuCoherence,
            CycleEngine::default(),
            None,
            Some(1),
        )
        .unwrap_err();
        assert!(err.contains("architectural minimum"), "{err}");
    }
}
