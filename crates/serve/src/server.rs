//! The request loop: line-JSON requests in, JSONL event frames out.
//!
//! One request per line. Every request produces a `dispatched` frame
//! carrying the request's content digest, then either a cached `result`
//! frame (the digest hit the in-memory or on-disk cache) or a `running`
//! frame, zero or more `progress` frames, and a final `result` or `error`
//! frame. Frames echo the request's `id` so clients can pipeline.
//!
//! Simulations run on a shared [`AttemptPool`] runner while the
//! connection thread forwards progress events — the same self-healing
//! pool the sweep harness uses, so a client that disconnects mid-run
//! never leaks a thread.

use crate::registry::{self, Prepared, Scale};
use gsi_bench::sweep::AttemptPool;
use gsi_chaos::FaultPlan;
use gsi_json::{ToJson, Value};
use gsi_mem::Protocol;
use gsi_sim::{CycleEngine, KernelRun, SimError, Simulator};
use gsi_trace::TraceLevel;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Operations the service accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Run a workload kernel and return its [`KernelRun`].
    Simulate,
    /// Run only the static pre-flight analysis gate; no cycles simulated.
    Analyze,
    /// Simulate with per-instruction blame attribution enabled.
    Blame,
    /// Simulate at counters trace level and return the trace summary.
    TraceSummary,
    /// Run to `at_cycle`, snapshot the whole machine, keep the snapshot.
    Checkpoint,
    /// Restore a stored snapshot and run the kernel to completion.
    Resume,
    /// Stop the service after acknowledging.
    Shutdown,
}

impl Op {
    /// The wire name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            Op::Simulate => "simulate",
            Op::Analyze => "analyze",
            Op::Blame => "blame",
            Op::TraceSummary => "trace-summary",
            Op::Checkpoint => "checkpoint",
            Op::Resume => "resume",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Op> {
        match s {
            "simulate" => Some(Op::Simulate),
            "analyze" => Some(Op::Analyze),
            "blame" => Some(Op::Blame),
            "trace-summary" => Some(Op::TraceSummary),
            "checkpoint" => Some(Op::Checkpoint),
            "resume" => Some(Op::Resume),
            "shutdown" => Some(Op::Shutdown),
            _ => None,
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in every frame (default 0).
    pub id: u64,
    /// What to do.
    pub op: Op,
    /// Registry workload name (see [`registry::WORKLOADS`]).
    pub workload: String,
    /// Workload scale (default small).
    pub scale: Scale,
    /// Coherence protocol: `"gpu"` (default) or `"denovo"`.
    pub protocol: Protocol,
    /// Cycle engine: `"event"` or `"dense"` (default: the engine default).
    pub engine: CycleEngine,
    /// Chaos seed: when present, arms [`FaultPlan::all`] with it.
    pub seed: Option<u64>,
    /// Override the SM count.
    pub sms: Option<usize>,
    /// Override the MSHR size.
    pub mshr: Option<usize>,
    /// Pause cycle for `checkpoint` (absolute simulator cycle).
    pub at_cycle: u64,
    /// Snapshot digest for `resume`.
    pub snapshot: Option<String>,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Value::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let field = |key: &str| v.get(key).and_then(Value::as_str);
        let op_name = field("op").ok_or("missing \"op\"")?;
        let op = Op::parse(op_name).ok_or_else(|| format!("unknown op {op_name:?}"))?;
        let scale_name = field("scale").unwrap_or("small");
        let scale =
            Scale::parse(scale_name).ok_or_else(|| format!("unknown scale {scale_name:?}"))?;
        let protocol = match field("protocol").unwrap_or("gpu") {
            "gpu" => Protocol::GpuCoherence,
            "denovo" => Protocol::DeNovo,
            other => return Err(format!("unknown protocol {other:?}")),
        };
        let engine = match field("engine") {
            None => CycleEngine::default(),
            Some("event") => CycleEngine::Event,
            Some("dense") => CycleEngine::Dense,
            Some(other) => return Err(format!("unknown engine {other:?}")),
        };
        let usize_field = |key: &str| -> Result<Option<usize>, String> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(x) => x
                    .as_u64()
                    .map(|n| Some(n as usize))
                    .ok_or_else(|| format!("\"{key}\" must be an unsigned integer")),
            }
        };
        let workload = match op {
            Op::Shutdown => String::new(),
            _ => field("workload").ok_or("missing \"workload\"")?.to_string(),
        };
        Ok(Request {
            id: v.get("id").and_then(Value::as_u64).unwrap_or(0),
            op,
            workload,
            scale,
            protocol,
            engine,
            seed: v.get("seed").and_then(Value::as_u64),
            sms: usize_field("sms")?,
            mshr: usize_field("mshr")?,
            at_cycle: v.get("at_cycle").and_then(Value::as_u64).unwrap_or(0),
            snapshot: v.get("snapshot").and_then(Value::as_str).map(str::to_string),
        })
    }

    /// The canonical cache key: every semantic field, in a fixed order, in
    /// gsi-json's compact (canonical) encoding.
    fn cache_key(&self) -> Value {
        gsi_json::obj! {
            "op" => self.op.name(),
            "workload" => self.workload,
            "scale" => self.scale.name(),
            "protocol" => protocol_name(self.protocol),
            "engine" => engine_name(self.engine),
            "seed" => self.seed,
            "sms" => self.sms.map(|n| n as u64),
            "mshr" => self.mshr.map(|n| n as u64),
            "at_cycle" => self.at_cycle,
            "snapshot" => self.snapshot,
        }
    }

    /// Content digest of the request: FNV-1a 128 of the canonical cache
    /// key. Identical requests — same workload, scale, protocol, engine,
    /// seed, and overrides — share a digest and therefore a cache slot.
    pub fn digest(&self) -> String {
        fnv1a128(&self.cache_key().to_string())
    }
}

fn protocol_name(p: Protocol) -> &'static str {
    match p {
        Protocol::GpuCoherence => "gpu",
        Protocol::DeNovo => "denovo",
    }
}

fn engine_name(e: CycleEngine) -> &'static str {
    match e {
        CycleEngine::Event => "event",
        CycleEngine::Dense => "dense",
    }
}

// Request digests use the shared workspace FNV-1a 128 (`gsi_json::fnv1a128`):
// wide enough that an accidental collision between two distinct requests —
// which would alias snapshot slots — is out of reach; the result cache
// additionally verifies the stored canonical key on every lookup.
use gsi_json::fnv1a128;

/// Crash-safe file publish: write the full contents to a temp file in the
/// same directory, then rename it into place. A kill mid-write can leave a
/// stale temp file behind, but never a truncated entry that a later lookup
/// would read and trust. Concurrent stores of the same name are benign:
/// entries are content-addressed, so both writers carry identical bytes.
fn write_atomic(dir: &std::path::Path, name: &str, text: &str) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".{name}.tmp"));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, dir.join(name))
}

/// Per-connection request hygiene: bounds that keep one stuck or hostile
/// client from pinning a connection thread forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnLimits {
    /// Maximum accepted request-line length in bytes. A longer line gets a
    /// typed `oversize` error frame and the connection is closed — the
    /// thread never buffers an unbounded line.
    pub max_line: usize,
    /// How long a connection may sit idle between reads (TCP only; the
    /// supervisor applies it via `set_read_timeout`). Expiry produces a
    /// typed `idle-timeout` error frame, then the connection closes.
    /// `None` disables the timeout (stdio mode, trusted pipes).
    pub idle_timeout: Option<std::time::Duration>,
}

impl Default for ConnLimits {
    fn default() -> Self {
        // Requests are one-line JSON objects of a few hundred bytes; 64 KiB
        // leaves two orders of magnitude of headroom.
        ConnLimits { max_line: 64 * 1024, idle_timeout: None }
    }
}

/// Why a bounded line read stopped without producing a request line.
enum LineError {
    /// The line exceeded [`ConnLimits::max_line`] before a newline.
    Oversize,
    /// The transport's read timeout expired while the line was idle.
    IdleTimeout,
    /// Any other I/O failure.
    Io(io::Error),
}

/// Read one `\n`-terminated line of at most `max` bytes. Returns `None` at
/// EOF. Invalid UTF-8 is replaced rather than rejected — the JSON parser
/// downstream produces the typed error.
fn read_bounded_line(reader: &mut impl BufRead, max: usize) -> Result<Option<String>, LineError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(LineError::IdleTimeout)
            }
            Err(e) => return Err(LineError::Io(e)),
        };
        if chunk.is_empty() {
            // EOF: a partial unterminated line still counts as a request
            // (matches `BufRead::lines` behavior for final lines).
            return if buf.is_empty() {
                Ok(None)
            } else {
                Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
            };
        }
        let (line_end, used) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (true, i + 1),
            None => (false, chunk.len()),
        };
        if buf.len() + used > max + 1 {
            return Err(LineError::Oversize);
        }
        buf.extend_from_slice(&chunk[..used]);
        reader.consume(used);
        if line_end {
            while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
        }
    }
}

/// Render a caught panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What a finished job hands back to the connection thread.
struct JobOutput {
    result: Value,
    snapshot: Option<Value>,
}

/// Events a running job streams to the connection thread.
enum JobEvent {
    Running,
    Progress(u64),
    Done(Result<JobOutput, String>),
}

/// A cached result plus the canonical cache-key JSON that produced its
/// digest, so a lookup can prove the entry belongs to the request — a
/// digest collision between two distinct requests misses instead of
/// silently aliasing.
struct CacheEntry {
    key: String,
    result: Arc<Value>,
}

/// The simulation service: a shared attempt pool, a content-addressed
/// result cache (in-memory, optionally mirrored to a directory), and the
/// snapshot store backing `checkpoint`/`resume`.
pub struct Server {
    pool: AttemptPool,
    cache: Mutex<HashMap<String, CacheEntry>>,
    snapshots: Mutex<HashMap<String, Arc<Value>>>,
    cache_dir: Option<PathBuf>,
    sims_run: Arc<AtomicU64>,
    shutdown: AtomicBool,
    slice: u64,
    limits: ConnLimits,
}

/// Cycles per `run_until` slice between progress checks.
const DEFAULT_SLICE: u64 = 8192;

impl Server {
    /// A service with an empty cache. `cache_dir`, when given, mirrors
    /// results and snapshots to `<dir>/<digest>.json` /
    /// `<dir>/<digest>.snap.json` so they survive restarts.
    pub fn new(cache_dir: Option<PathBuf>) -> Server {
        Server {
            pool: AttemptPool::new(),
            cache: Mutex::new(HashMap::new()),
            snapshots: Mutex::new(HashMap::new()),
            cache_dir,
            sims_run: Arc::new(AtomicU64::new(0)),
            shutdown: AtomicBool::new(false),
            slice: DEFAULT_SLICE,
            limits: ConnLimits::default(),
        }
    }

    /// Set the per-connection request-hygiene limits.
    #[must_use]
    pub fn with_limits(mut self, limits: ConnLimits) -> Server {
        self.limits = ConnLimits { max_line: limits.max_line.max(2), ..limits };
        self
    }

    /// Set the progress-slice length in cycles (tests shrink it to force
    /// progress frames on tiny kernels).
    #[must_use]
    pub fn with_slice(mut self, cycles: u64) -> Server {
        self.slice = cycles.max(1);
        self
    }

    /// Simulations actually executed (cache hits don't count) — the
    /// observable that proves deduplication works.
    pub fn sims_run(&self) -> u64 {
        self.sims_run.load(Ordering::Relaxed)
    }

    /// True once a `shutdown` request was processed.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Look up a cached result by digest, verifying the stored canonical
    /// key matches `key` — a mismatched entry (digest collision, or a
    /// foreign file in the cache directory) is a miss, never an alias.
    fn cache_lookup(&self, digest: &str, key: &str) -> Option<Arc<Value>> {
        if let Some(entry) = Self::lock(&self.cache).get(digest) {
            if entry.key == key {
                return Some(Arc::clone(&entry.result));
            }
            return None; // the on-disk entry has the same digest and key
        }
        let dir = self.cache_dir.as_ref()?;
        let text = std::fs::read_to_string(dir.join(format!("{digest}.json"))).ok()?;
        let wrapper = Value::parse(&text).ok()?;
        if wrapper.get("key").and_then(Value::as_str) != Some(key) {
            return None;
        }
        let result = Arc::new(wrapper.get("result")?.clone());
        Self::lock(&self.cache).insert(
            digest.to_string(),
            CacheEntry { key: key.to_string(), result: Arc::clone(&result) },
        );
        Some(result)
    }

    fn cache_store(&self, digest: &str, key: &str, result: Value) -> Arc<Value> {
        let v = Arc::new(result);
        if let Some(dir) = &self.cache_dir {
            let wrapper = gsi_json::obj! { "key" => key, "result" => (*v).clone() };
            let _ = write_atomic(dir, &format!("{digest}.json"), &wrapper.to_string());
        }
        Self::lock(&self.cache).insert(
            digest.to_string(),
            CacheEntry { key: key.to_string(), result: Arc::clone(&v) },
        );
        v
    }

    fn snapshot_lookup(&self, digest: &str) -> Option<Arc<Value>> {
        if let Some(v) = Self::lock(&self.snapshots).get(digest) {
            return Some(Arc::clone(v));
        }
        let dir = self.cache_dir.as_ref()?;
        let text = std::fs::read_to_string(dir.join(format!("{digest}.snap.json"))).ok()?;
        let v = Arc::new(Value::parse(&text).ok()?);
        Self::lock(&self.snapshots).insert(digest.to_string(), Arc::clone(&v));
        Some(v)
    }

    fn snapshot_store(&self, digest: &str, snapshot: Value) {
        let v = Arc::new(snapshot);
        Self::lock(&self.snapshots).insert(digest.to_string(), Arc::clone(&v));
        if let Some(dir) = &self.cache_dir {
            let _ = write_atomic(dir, &format!("{digest}.snap.json"), &v.to_string());
        }
    }

    /// Handle one request line, writing frames to `out`. Returns `false`
    /// when the connection should close (shutdown).
    pub fn handle_line(&self, line: &str, out: &mut dyn Write) -> io::Result<bool> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(true);
        }
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err(message) => {
                let id = Value::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Value::as_u64))
                    .unwrap_or(0);
                frame(
                    out,
                    gsi_json::obj! { "id" => id, "event" => "error", "message" => message },
                )?;
                return Ok(true);
            }
        };

        if req.op == Op::Shutdown {
            self.shutdown.store(true, Ordering::Relaxed);
            frame(
                out,
                gsi_json::obj! {
                    "id" => req.id,
                    "event" => "result",
                    "cached" => false,
                    "result" => gsi_json::obj! { "ok" => true },
                },
            )?;
            return Ok(false);
        }

        let key = req.cache_key().to_string();
        let digest = fnv1a128(&key);
        frame(out, gsi_json::obj! { "id" => req.id, "event" => "dispatched", "digest" => digest })?;

        if let Some(hit) = self.cache_lookup(&digest, &key) {
            frame(
                out,
                gsi_json::obj! {
                    "id" => req.id,
                    "event" => "result",
                    "cached" => true,
                    "digest" => digest,
                    "result" => (*hit).clone(),
                },
            )?;
            return Ok(true);
        }

        // Resume needs its snapshot resolved before dispatch, so unknown
        // digests fail fast without burning a runner.
        let snapshot = match req.op {
            Op::Resume => {
                let Some(d) = req.snapshot.as_deref() else {
                    frame(
                        out,
                        gsi_json::obj! {
                            "id" => req.id,
                            "event" => "error",
                            "message" => "resume requires \"snapshot\"",
                        },
                    )?;
                    return Ok(true);
                };
                match self.snapshot_lookup(d) {
                    Some(s) => Some(s),
                    None => {
                        frame(
                            out,
                            gsi_json::obj! {
                                "id" => req.id,
                                "event" => "error",
                                "message" => format!("unknown snapshot {d:?}"),
                            },
                        )?;
                        return Ok(true);
                    }
                }
            }
            _ => None,
        };

        let (tx, rx) = mpsc::channel();
        {
            let req = req.clone();
            let sims = Arc::clone(&self.sims_run);
            let digest = digest.clone();
            let slice = self.slice;
            self.pool.dispatch(move || {
                let _ = tx.send(JobEvent::Running);
                // A panic anywhere in the job must still produce a
                // terminal frame (and must not kill the pool runner), so
                // the protocol invariant — every request ends in exactly
                // one `result` or `error` — holds even for simulator bugs.
                let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute(&req, &digest, snapshot, &sims, slice, &tx)
                }))
                .unwrap_or_else(|payload| Err(format!("job panicked: {}", panic_message(payload))));
                let _ = tx.send(JobEvent::Done(done));
            });
        }
        for event in rx {
            match event {
                JobEvent::Running => {
                    frame(out, gsi_json::obj! { "id" => req.id, "event" => "running" })?;
                }
                JobEvent::Progress(percent) => {
                    frame(
                        out,
                        gsi_json::obj! {
                            "id" => req.id, "event" => "progress", "percent" => percent,
                        },
                    )?;
                }
                JobEvent::Done(Ok(output)) => {
                    if let Some(snap) = output.snapshot {
                        self.snapshot_store(&digest, snap);
                    }
                    let stored = self.cache_store(&digest, &key, output.result);
                    frame(
                        out,
                        gsi_json::obj! {
                            "id" => req.id,
                            "event" => "result",
                            "cached" => false,
                            "digest" => digest,
                            "result" => (*stored).clone(),
                        },
                    )?;
                    break;
                }
                JobEvent::Done(Err(message)) => {
                    frame(
                        out,
                        gsi_json::obj! { "id" => req.id, "event" => "error", "message" => message },
                    )?;
                    break;
                }
            }
        }
        Ok(true)
    }

    /// Serve one connection: requests line by line until EOF, shutdown, or
    /// a hygiene violation. An oversize request line or an expired idle
    /// timeout ends the connection with a typed error frame — one stuck or
    /// hostile client can never pin the connection thread forever.
    pub fn handle_connection(
        &self,
        mut reader: impl BufRead,
        mut out: impl Write,
    ) -> io::Result<()> {
        loop {
            match read_bounded_line(&mut reader, self.limits.max_line) {
                Ok(None) => return Ok(()),
                Ok(Some(line)) => {
                    if !self.handle_line(&line, &mut out)? {
                        return Ok(());
                    }
                }
                Err(LineError::Oversize) => {
                    return frame(
                        &mut out,
                        gsi_json::obj! {
                            "id" => 0u64,
                            "event" => "error",
                            "kind" => "oversize",
                            "message" => format!(
                                "request line exceeds the {}-byte limit; closing",
                                self.limits.max_line
                            ),
                        },
                    );
                }
                Err(LineError::IdleTimeout) => {
                    return frame(
                        &mut out,
                        gsi_json::obj! {
                            "id" => 0u64,
                            "event" => "error",
                            "kind" => "idle-timeout",
                            "message" => "connection idle past the read timeout; closing",
                        },
                    );
                }
                Err(LineError::Io(e)) => return Err(e),
            }
        }
    }

    /// Accept loop: serve TCP connections, each on its own thread, until a
    /// client sends `shutdown` — an idle or slow connection never blocks
    /// other clients. Per-connection IO errors are dropped (a client
    /// hanging up mid-stream must not kill the service). On shutdown every
    /// open connection is closed, so parked readers unblock and the loop
    /// returns promptly.
    pub fn serve(&self, listener: &std::net::TcpListener) -> io::Result<()> {
        let conns = ConnSet::default();
        let conns = &conns;
        std::thread::scope(|scope| {
            let accept = || -> io::Result<()> {
                for stream in listener.incoming() {
                    let stream = stream?;
                    if self.is_shutdown() {
                        return Ok(());
                    }
                    // Frames are small and latency is the product; don't
                    // let Nagle hold the result frame behind the
                    // dispatched frame.
                    let _ = stream.set_nodelay(true);
                    // Arm the idle-read timeout so a silent client's
                    // connection thread frees itself (typed error frame,
                    // then close) instead of parking forever.
                    let _ = stream.set_read_timeout(self.limits.idle_timeout);
                    let token = conns.track(&stream);
                    scope.spawn(move || {
                        if let Ok(reader) = stream.try_clone().map(io::BufReader::new) {
                            let _ = self.handle_connection(reader, &stream);
                        }
                        conns.untrack(token);
                        if self.is_shutdown() {
                            // Unblock sibling connections parked on reads,
                            // then nudge the accept loop awake so it sees
                            // the flag and exits.
                            conns.close_all();
                            if let Ok(addr) = listener.local_addr() {
                                let _ = std::net::TcpStream::connect(addr);
                            }
                        }
                    });
                }
                Ok(())
            };
            let result = accept();
            // Before the scope joins the connection threads, make sure
            // none is parked on a dead loop (accept-error exit path).
            conns.close_all();
            result
        })
    }
}

/// The set of live client connections, so shutdown can close them all
/// (readers blocked in `BufRead::lines` only wake on EOF).
#[derive(Default)]
struct ConnSet {
    next: AtomicU64,
    conns: Mutex<Vec<(u64, std::net::TcpStream)>>,
}

impl ConnSet {
    fn track(&self, stream: &std::net::TcpStream) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            Server::lock(&self.conns).push((id, clone));
        }
        id
    }

    fn untrack(&self, id: u64) {
        Server::lock(&self.conns).retain(|(i, _)| *i != id);
    }

    fn close_all(&self) {
        for (_, conn) in Server::lock(&self.conns).drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Write one JSONL frame.
fn frame(out: &mut dyn Write, v: Value) -> io::Result<()> {
    writeln!(out, "{v}")?;
    out.flush()
}

/// Build the simulator for a request (chaos armed, blame/trace wired per
/// op) with memory initialized.
fn build_sim(prepared: &Prepared, req: &Request) -> Simulator {
    let mut sim = Simulator::new(prepared.config);
    if let Some(seed) = req.seed {
        sim.set_chaos(&FaultPlan::all(seed));
    }
    match req.op {
        Op::Blame => sim.set_blame_enabled(true),
        Op::TraceSummary => sim.set_trace_level(TraceLevel::Counters),
        _ => {}
    }
    prepared.init_memory(&mut sim);
    sim
}

/// Drive the in-progress kernel to completion in `slice`-cycle steps,
/// streaming percent-complete (blocks retired over grid blocks) between
/// steps.
fn drive(
    sim: &mut Simulator,
    prepared: &Prepared,
    slice: u64,
    tx: &mpsc::Sender<JobEvent>,
) -> Result<KernelRun, String> {
    let grid = prepared.spec.grid_blocks.max(1);
    let mut last = u64::MAX;
    loop {
        let stop = sim.cycle().saturating_add(slice);
        match sim.run_until(&prepared.spec, stop).map_err(|e| e.to_string())? {
            Some(run) => return Ok(run),
            None => {
                let percent = sim.blocks_completed().unwrap_or(0) * 100 / grid;
                if percent != last {
                    last = percent;
                    let _ = tx.send(JobEvent::Progress(percent));
                }
            }
        }
    }
}

/// Execute one request on a pool runner.
fn execute(
    req: &Request,
    digest: &str,
    snapshot: Option<Arc<Value>>,
    sims: &AtomicU64,
    slice: u64,
    tx: &mpsc::Sender<JobEvent>,
) -> Result<JobOutput, String> {
    // Test hook: a workload that always panics, to pin the invariant that
    // a panicking job still ends in an `error` frame (never a hang).
    #[cfg(test)]
    if req.workload == "__panic__" {
        panic!("synthetic panic for tests");
    }
    let prepared =
        registry::prepare(&req.workload, req.scale, req.protocol, req.engine, req.sms, req.mshr)?;
    match req.op {
        Op::Analyze => {
            // Only the pre-flight gate runs; an analysis refusal is the
            // answer, not a failure.
            let mut sim = Simulator::new(prepared.config);
            match sim.begin_kernel(&prepared.spec) {
                Ok(()) | Err(SimError::Analysis { .. }) => {}
                Err(e) => return Err(e.to_string()),
            }
            let report = sim.last_analysis().ok_or("the analysis gate is disabled")?;
            Ok(JobOutput {
                result: gsi_json::obj! {
                    "workload" => req.workload,
                    "analysis" => report.to_json(),
                },
                snapshot: None,
            })
        }
        Op::Simulate | Op::Blame | Op::TraceSummary => {
            let mut sim = build_sim(&prepared, req);
            sims.fetch_add(1, Ordering::Relaxed);
            sim.begin_kernel(&prepared.spec).map_err(|e| e.to_string())?;
            let run = drive(&mut sim, &prepared, slice, tx)?;
            let mut result = gsi_json::obj! {
                "workload" => req.workload,
                "cycles" => run.cycles,
                "instructions" => run.instructions,
                "run" => run,
            };
            if req.op == Op::Blame {
                result.set("blame", sim.blame_report().to_json());
            }
            if req.op == Op::TraceSummary {
                result.set("trace_summary", sim.trace().to_json());
            }
            Ok(JobOutput { result, snapshot: None })
        }
        Op::Checkpoint => {
            let mut sim = build_sim(&prepared, req);
            sims.fetch_add(1, Ordering::Relaxed);
            sim.begin_kernel(&prepared.spec).map_err(|e| e.to_string())?;
            let completed =
                sim.run_until(&prepared.spec, req.at_cycle).map_err(|e| e.to_string())?.is_some();
            let snap = sim.snapshot();
            Ok(JobOutput {
                result: gsi_json::obj! {
                    "workload" => req.workload,
                    "snapshot" => digest,
                    "cycle" => sim.cycle(),
                    "completed" => completed,
                },
                snapshot: Some(snap),
            })
        }
        Op::Resume => {
            let snap = snapshot.ok_or("resume dispatched without a snapshot")?;
            let mut sim = Simulator::restore(&snap, &prepared.spec).map_err(|e| e.to_string())?;
            if !sim.kernel_in_progress() {
                return Err("the checkpoint has no kernel in progress".to_string());
            }
            sims.fetch_add(1, Ordering::Relaxed);
            let from = sim.cycle();
            let run = drive(&mut sim, &prepared, slice, tx)?;
            Ok(JobOutput {
                result: gsi_json::obj! {
                    "workload" => req.workload,
                    "resumed_from_cycle" => from,
                    "cycles" => run.cycles,
                    "instructions" => run.instructions,
                    "run" => run,
                },
                snapshot: None,
            })
        }
        Op::Shutdown => unreachable!("shutdown is handled before dispatch"),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let a = Request::parse(r#"{"op":"simulate","workload":"spmv"}"#).unwrap();
        let b = Request::parse(r#"{"op":"simulate","workload":"spmv","scale":"small"}"#).unwrap();
        assert_eq!(a.digest(), b.digest(), "defaults must not change the digest");
        let c =
            Request::parse(r#"{"op":"simulate","workload":"spmv","protocol":"denovo"}"#).unwrap();
        assert_ne!(a.digest(), c.digest());
        // The id is correlation metadata, not request content.
        let d = Request::parse(r#"{"op":"simulate","workload":"spmv","id":7}"#).unwrap();
        assert_eq!(a.digest(), d.digest());
    }

    #[test]
    fn parse_rejects_unknown_fields_values() {
        assert!(Request::parse(r#"{"op":"simulate"}"#).unwrap_err().contains("workload"));
        assert!(Request::parse(r#"{"op":"fly","workload":"spmv"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(Request::parse(r#"{"op":"simulate","workload":"x","engine":"warp"}"#)
            .unwrap_err()
            .contains("unknown engine"));
        assert!(Request::parse("not json").unwrap_err().contains("bad request JSON"));
    }

    fn frames(out: Vec<u8>) -> Vec<Value> {
        String::from_utf8(out).unwrap().lines().map(|l| Value::parse(l).unwrap()).collect()
    }

    #[test]
    fn a_panicking_job_still_ends_in_an_error_frame() {
        let server = Server::new(None);
        let mut out = Vec::new();
        let keep_open = server
            .handle_line(r#"{"id":3,"op":"simulate","workload":"__panic__"}"#, &mut out)
            .unwrap();
        assert!(keep_open, "a job panic must not close the connection");
        let last = frames(out).pop().unwrap();
        assert_eq!(last.get("event").and_then(Value::as_str), Some("error"));
        let message = last.get("message").and_then(Value::as_str).unwrap();
        assert!(message.contains("panicked"), "{message}");
        // The pool survives: the next request is served normally.
        let mut out = Vec::new();
        server.handle_line(r#"{"id":4,"op":"analyze","workload":"spmv"}"#, &mut out).unwrap();
        let last = frames(out).pop().unwrap();
        assert_eq!(last.get("event").and_then(Value::as_str), Some("result"));
    }

    #[test]
    fn out_of_range_sms_is_an_error_frame_not_a_hang() {
        // The original failure mode: "sms":0 tripped a SystemConfig
        // assert on the pool runner and the client never got a frame.
        let server = Server::new(None);
        for bad in [
            r#"{"op":"simulate","workload":"spmv","sms":0}"#,
            r#"{"op":"simulate","workload":"spmv","sms":16}"#,
            r#"{"op":"simulate","workload":"spmv","mshr":1099511627776}"#,
        ] {
            let mut out = Vec::new();
            server.handle_line(bad, &mut out).unwrap();
            let last = frames(out).pop().unwrap();
            assert_eq!(last.get("event").and_then(Value::as_str), Some("error"), "{bad}");
        }
        assert_eq!(server.sims_run(), 0);
    }

    #[test]
    fn analyze_reports_race_findings_and_caches_them() {
        // A denied launch is still an answer: the analyze op returns the
        // report (race findings included) as a result frame, and the
        // identical follow-up request is served from the content-addressed
        // cache.
        let server = Server::new(None);
        let req = r#"{"op":"analyze","workload":"__racy__","protocol":"denovo"}"#;
        let mut out = Vec::new();
        server.handle_line(req, &mut out).unwrap();
        let last = frames(out).pop().unwrap();
        assert_eq!(last.get("event").and_then(Value::as_str), Some("result"));
        assert_eq!(last.get("cached").and_then(Value::as_bool), Some(false));
        let result = last.get("result").unwrap();
        let analysis = result.get("analysis").unwrap();
        assert!(analysis.get("errors").and_then(Value::as_u64).unwrap() > 0, "{analysis}");
        let findings = analysis.get("findings").and_then(Value::as_array).unwrap();
        assert!(
            findings
                .iter()
                .any(|f| f.get("kind").and_then(Value::as_str) == Some("global-race-inter-warp")),
            "{analysis}"
        );
        let mut out = Vec::new();
        server.handle_line(req, &mut out).unwrap();
        let last = frames(out).pop().unwrap();
        assert_eq!(last.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(server.sims_run(), 0, "analyze never simulates a cycle");
    }

    #[test]
    fn a_colliding_cache_entry_is_a_miss_not_an_alias() {
        let server = Server::new(None);
        let req = Request::parse(r#"{"op":"analyze","workload":"spmv"}"#).unwrap();
        // Poison the slot this request's digest maps to with an entry
        // recorded under a different canonical key, as a digest collision
        // would. The lookup must reject it and recompute.
        Server::lock(&server.cache).insert(
            req.digest(),
            CacheEntry {
                key: "{\"op\":\"other\"}".to_string(),
                result: Arc::new(gsi_json::obj! { "wrong" => true }),
            },
        );
        let mut out = Vec::new();
        server.handle_line(r#"{"op":"analyze","workload":"spmv"}"#, &mut out).unwrap();
        let last = frames(out).pop().unwrap();
        assert_eq!(last.get("event").and_then(Value::as_str), Some("result"));
        assert_eq!(
            last.get("cached").and_then(Value::as_bool),
            Some(false),
            "a collision must miss, not alias"
        );
        assert!(last.get("result").unwrap().get("wrong").is_none(), "aliased payload served");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 128 test vectors.
        assert_eq!(fnv1a128(""), "6c62272e07bb014262b821756295c58d");
        assert_eq!(fnv1a128("a"), "d228cb696f1a8caf78912b704e4a8964");
        assert_eq!(fnv1a128("foobar"), "343e1662793c64bf6f0d3597ba446f18");
    }

    #[test]
    fn oversize_request_line_is_a_typed_error_frame_not_a_hang() {
        let server =
            Server::new(None).with_limits(ConnLimits { max_line: 128, ..Default::default() });
        // A "request" that never ends within the limit: the connection
        // must get an `oversize` error frame and close, without the server
        // ever buffering the whole line.
        let big = format!("{{\"op\":\"simulate\",\"workload\":\"{}\"}}\n", "x".repeat(4096));
        let mut out = Vec::new();
        server.handle_connection(io::Cursor::new(big.into_bytes()), &mut out).unwrap();
        let fs = frames(out);
        assert_eq!(fs.len(), 1, "exactly one frame then close");
        assert_eq!(fs[0].get("event").and_then(Value::as_str), Some("error"));
        assert_eq!(fs[0].get("kind").and_then(Value::as_str), Some("oversize"));
        // The server itself is unaffected: the next connection works.
        let mut out = Vec::new();
        server
            .handle_connection(
                io::Cursor::new(b"{\"op\":\"analyze\",\"workload\":\"spmv\"}\n".to_vec()),
                &mut out,
            )
            .unwrap();
        let last = frames(out).pop().unwrap();
        assert_eq!(last.get("event").and_then(Value::as_str), Some("result"));
    }

    #[test]
    fn bounded_reads_accept_normal_lines_and_final_unterminated_lines() {
        let server =
            Server::new(None).with_limits(ConnLimits { max_line: 256, ..Default::default() });
        // Two requests, the second without a trailing newline (EOF ends it).
        let input = b"{\"id\":1,\"op\":\"analyze\",\"workload\":\"spmv\"}\n\
                      {\"id\":2,\"op\":\"analyze\",\"workload\":\"spmv\"}"
            .to_vec();
        let mut out = Vec::new();
        server.handle_connection(io::Cursor::new(input), &mut out).unwrap();
        let results: Vec<u64> = frames(out)
            .iter()
            .filter(|f| f.get("event").and_then(Value::as_str) == Some("result"))
            .map(|f| f.get("id").and_then(Value::as_u64).unwrap())
            .collect();
        assert_eq!(results, vec![1, 2]);
    }

    #[test]
    fn idle_timeout_produces_typed_error_frame_over_tcp() {
        use std::io::Read;
        let server = Arc::new(Server::new(None).with_limits(ConnLimits {
            idle_timeout: Some(std::time::Duration::from_millis(100)),
            ..Default::default()
        }));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = Arc::clone(&server);
        let handle = std::thread::spawn(move || {
            let _ = srv.serve(&listener);
        });
        // Connect and send nothing: the read timeout must fire, the
        // connection must get the typed frame and then EOF.
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        conn.read_to_string(&mut text).unwrap(); // returns only on EOF
        let v = Value::parse(text.lines().next().expect("one frame")).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("idle-timeout"));
        // A live client is unaffected within the window; shut down cleanly.
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        writeln!(conn, "{{\"op\":\"shutdown\"}}").unwrap();
        let mut text = String::new();
        let _ = conn.read_to_string(&mut text);
        assert!(text.contains("\"result\""), "{text}");
        handle.join().unwrap();
    }

    #[test]
    fn cache_and_snapshot_files_are_published_atomically() {
        let dir = std::env::temp_dir().join(format!("gsi_serve_atomic_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::new(Some(dir.clone()));
        server.cache_store("deadbeef", "{\"op\":\"x\"}", gsi_json::obj! { "ok" => true });
        server.snapshot_store("deadbeef", gsi_json::obj! { "cycle" => 9u64 });
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.contains(&"deadbeef.json".to_string()), "{names:?}");
        assert!(names.contains(&"deadbeef.snap.json".to_string()), "{names:?}");
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "temp files must not survive a store: {names:?}"
        );
        // A torn write — the failure the temp-file/rename protocol makes
        // impossible going forward — must be a miss, never trusted.
        std::fs::write(dir.join("0badc0de.json"), "{\"key\":\"k\",\"res").unwrap();
        std::fs::write(dir.join("0badc0de.snap.json"), "{\"cy").unwrap();
        assert!(server.cache_lookup("0badc0de", "k").is_none());
        assert!(server.snapshot_lookup("0badc0de").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
