//! `gsi-serve` — run the simulation service over TCP or stdio.
//!
//! ```text
//! gsi-serve --listen 127.0.0.1:0 [--cache-dir DIR] [--slice CYCLES]
//!           [--max-line BYTES] [--idle-timeout SECS]
//! gsi-serve --stdio [--cache-dir DIR]
//! ```
//!
//! In TCP mode the bound address is announced on stdout as
//! `LISTENING <addr>` (useful with port 0); frames go to the socket. In
//! stdio mode frames go to stdout. The service exits after a client sends
//! `{"op":"shutdown"}`.
//!
//! Request hygiene: request lines longer than `--max-line` (default
//! 64 KiB) and TCP connections idle past `--idle-timeout` (default 300 s;
//! 0 disables) get a typed error frame and the connection closes. Stdio
//! mode — the shard workers' transport — never times out: the supervisor
//! legitimately leaves workers idle between units.

use gsi_serve::{ConnLimits, Server};
use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: gsi-serve (--listen ADDR | --stdio) [--cache-dir DIR] [--slice CYCLES] \
         [--max-line BYTES] [--idle-timeout SECS]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen: Option<String> = None;
    let mut stdio = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut slice: Option<u64> = None;
    let mut limits = ConnLimits::default();
    let mut idle_secs: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--stdio" => stdio = true,
            "--cache-dir" => cache_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--slice" => {
                slice = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--max-line" => {
                limits.max_line = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 2)
                    .unwrap_or_else(|| usage())
            }
            "--idle-timeout" => {
                idle_secs = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&s| s >= 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }
    if stdio == listen.is_some() {
        usage(); // exactly one transport
    }

    // TCP defaults to a 300 s idle timeout; stdio (trusted pipe, shard
    // worker mode) has none — workers wait arbitrarily long for the next
    // unit.
    limits.idle_timeout = if stdio {
        None
    } else {
        match idle_secs {
            Some(s) if s > 0.0 => Some(Duration::from_secs_f64(s)),
            Some(_) => None, // 0 disables the timeout
            None => Some(Duration::from_secs(300)),
        }
    };

    let mut server = Server::new(cache_dir).with_limits(limits);
    if let Some(cycles) = slice {
        server = server.with_slice(cycles);
    }

    if stdio {
        let stdin = io::stdin();
        if let Err(e) = server.handle_connection(stdin.lock(), io::stdout()) {
            // A consumer that stops reading (`gsi-serve --stdio | head`)
            // closes the pipe; that is a normal end of session.
            if e.kind() != io::ErrorKind::BrokenPipe {
                eprintln!("stdio error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let addr = listen.expect("checked above");
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("bind {addr}: {e}");
        std::process::exit(1);
    });
    match listener.local_addr() {
        Ok(bound) => println!("LISTENING {bound}"),
        Err(e) => {
            eprintln!("local_addr: {e}");
            std::process::exit(1);
        }
    }
    // The announcement must reach a piping parent before the first accept.
    use io::Write;
    let _ = io::stdout().flush();
    if let Err(e) = server.serve(&listener) {
        eprintln!("serve error: {e}");
        std::process::exit(1);
    }
}
