//! # gsi-serve — the persistent checkpointed simulation service
//!
//! A line-JSON request loop over TCP or stdio, turning the simulator into
//! a long-lived service: clients submit `simulate` / `analyze` / `blame` /
//! `trace-summary` / `checkpoint` / `resume` requests one JSON object per
//! line and receive JSONL event frames back (`dispatched`, `running`,
//! `progress`, then `result` or `error`).
//!
//! Three properties make it a *service* rather than a CLI in a loop:
//!
//! * **Content-addressed result cache.** Every request is digested (FNV-1a
//!   128 over its canonical gsi-json encoding); identical requests — same
//!   workload, scale, protocol, engine, seed, and overrides — are answered
//!   from the cache (`"cached":true`) without re-simulating. Entries store
//!   the canonical key and are verified on lookup, so a digest collision
//!   misses instead of aliasing. With a cache directory, results survive
//!   restarts.
//! * **Checkpoint/resume.** A `checkpoint` request runs a kernel to a
//!   target cycle and snapshots the *entire* machine — every warp, cache
//!   line, MSHR, store-buffer entry, in-flight NoC message, DRAM timing
//!   state, chaos stream, and attribution ledger — as canonical gsi-json.
//!   A later `resume` rebuilds the machine from the snapshot and finishes
//!   the run, bit-identical to never having paused (pinned by
//!   `tests/checkpoint.rs` across all nine workloads, both protocols, and
//!   both cycle engines).
//! * **Pooled execution.** Simulations run on the sweep harness's
//!   self-healing [`AttemptPool`](gsi_bench::sweep::AttemptPool), with the
//!   connection thread streaming progress frames while the job runs.
//!
//! ## Wire format
//!
//! ```text
//! → {"id":1,"op":"simulate","workload":"spmv","scale":"small","protocol":"denovo"}
//! ← {"id":1,"event":"dispatched","digest":"9c0f..."}
//! ← {"id":1,"event":"running"}
//! ← {"id":1,"event":"progress","percent":50}
//! ← {"id":1,"event":"result","cached":false,"digest":"9c0f...","result":{...}}
//! ```
//!
//! See `DESIGN.md` §14 for the full protocol and checkpoint format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod server;

pub use registry::{prepare, Prepared, Scale, MAX_MSHR_ENTRIES, WORKLOADS};
pub use server::{ConnLimits, Op, Request, Server};
