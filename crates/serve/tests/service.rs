//! End-to-end tests of the service request loop over an in-memory
//! connection: caching without re-simulation, disk-cache persistence
//! across server restarts, and checkpoint/resume equivalence with a
//! straight-through run.

#![allow(clippy::unwrap_used)]

use gsi_json::Value;
use gsi_serve::Server;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Feed request lines through one in-memory connection; parse the frames.
fn roundtrip(server: &Server, lines: &[String]) -> Vec<Value> {
    let input = lines.join("\n");
    let mut out = Vec::new();
    server.handle_connection(Cursor::new(input), &mut out).unwrap();
    String::from_utf8(out).unwrap().lines().map(|l| Value::parse(l).unwrap()).collect()
}

fn field<'a>(frame: &'a Value, key: &str) -> &'a Value {
    frame.get(key).unwrap_or_else(|| panic!("frame missing {key:?}: {frame}"))
}

fn event(frame: &Value) -> &str {
    field(frame, "event").as_str().unwrap()
}

/// The final frame of a request must be a result; return its payload.
fn result_frame(frames: &[Value]) -> &Value {
    let last = frames.last().expect("at least one frame");
    assert_eq!(event(last), "result", "unexpected final frame: {last}");
    last
}

/// A unique scratch directory under the target dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("serve-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn simulate_streams_frames_and_caches_repeats() {
    let server = Server::new(None).with_slice(64);
    let req = r#"{"id":1,"op":"simulate","workload":"spmv"}"#.to_string();
    let frames = roundtrip(&server, std::slice::from_ref(&req));

    assert_eq!(event(&frames[0]), "dispatched");
    let digest = field(&frames[0], "digest").as_str().unwrap().to_string();
    assert_eq!(digest.len(), 32);
    assert_eq!(event(&frames[1]), "running");
    assert!(
        frames.iter().any(|f| event(f) == "progress"),
        "a 64-cycle slice must yield at least one progress frame"
    );
    let result = result_frame(&frames);
    assert_eq!(field(result, "cached").as_bool(), Some(false));
    let cycles = field(field(result, "result"), "cycles").as_u64().unwrap();
    assert!(cycles > 0);
    assert_eq!(server.sims_run(), 1);

    // The identical request (even with a different correlation id) is
    // answered from the cache without re-simulating.
    let again = roundtrip(&server, &[req.replace(r#""id":1"#, r#""id":2"#)]);
    assert_eq!(event(&again[0]), "dispatched");
    let hit = result_frame(&again);
    assert_eq!(field(hit, "cached").as_bool(), Some(true));
    assert_eq!(field(hit, "id").as_u64(), Some(2));
    assert_eq!(
        field(hit, "result").to_string(),
        field(result, "result").to_string(),
        "cached result must be the stored payload"
    );
    assert_eq!(server.sims_run(), 1, "cache hit must not re-simulate");

    // A semantically different request is a miss.
    let denovo =
        roundtrip(&server, &[r#"{"op":"simulate","workload":"spmv","protocol":"denovo"}"#.into()]);
    assert_eq!(field(result_frame(&denovo), "cached").as_bool(), Some(false));
    assert_eq!(server.sims_run(), 2);
}

#[test]
fn disk_cache_survives_a_restart() {
    let dir = scratch_dir("disk");
    let req = r#"{"op":"simulate","workload":"histogram"}"#.to_string();

    let first = Server::new(Some(dir.clone()));
    let cold = roundtrip(&first, std::slice::from_ref(&req));
    assert_eq!(field(result_frame(&cold), "cached").as_bool(), Some(false));
    assert_eq!(first.sims_run(), 1);
    drop(first);

    // A fresh server over the same directory serves the result from disk.
    let second = Server::new(Some(dir));
    let warm = roundtrip(&second, &[req]);
    let hit = result_frame(&warm);
    assert_eq!(field(hit, "cached").as_bool(), Some(true));
    assert_eq!(field(hit, "result").to_string(), field(result_frame(&cold), "result").to_string());
    assert_eq!(second.sims_run(), 0, "disk hit must not re-simulate");
}

#[test]
fn checkpoint_then_resume_matches_straight_run() {
    let dir = scratch_dir("resume");
    let server = Server::new(Some(dir)).with_slice(256);

    let straight = roundtrip(&server, &[r#"{"op":"simulate","workload":"reduction"}"#.to_string()]);
    let straight_result = field(result_frame(&straight), "result");
    let cycles = field(straight_result, "cycles").as_u64().unwrap();
    let mid = (cycles / 2).max(1);

    let ckpt = roundtrip(
        &server,
        &[format!(r#"{{"op":"checkpoint","workload":"reduction","at_cycle":{mid}}}"#)],
    );
    let ckpt_result = field(result_frame(&ckpt), "result");
    assert_eq!(field(ckpt_result, "completed").as_bool(), Some(false));
    assert_eq!(field(ckpt_result, "cycle").as_u64(), Some(mid));
    let snap = field(ckpt_result, "snapshot").as_str().unwrap().to_string();

    let resumed = roundtrip(
        &server,
        &[format!(r#"{{"op":"resume","workload":"reduction","snapshot":"{snap}"}}"#)],
    );
    let resumed_result = field(result_frame(&resumed), "result");
    assert_eq!(field(resumed_result, "resumed_from_cycle").as_u64(), Some(mid));
    assert_eq!(
        field(resumed_result, "run").to_string(),
        field(straight_result, "run").to_string(),
        "resumed run must be bit-identical to the straight run"
    );
}

#[test]
fn blame_and_trace_summary_carry_their_artifacts() {
    let server = Server::new(None);
    let frames = roundtrip(
        &server,
        &[
            r#"{"op":"blame","workload":"histogram"}"#.to_string(),
            r#"{"op":"trace-summary","workload":"histogram"}"#.to_string(),
        ],
    );
    let results: Vec<&Value> =
        frames.iter().filter(|f| event(f) == "result").map(|f| field(f, "result")).collect();
    assert_eq!(results.len(), 2);
    assert!(results[0].get("blame").is_some(), "blame result must carry the report");
    assert!(
        results[1].get("trace_summary").is_some(),
        "trace-summary result must carry the summary"
    );
    // Same workload, different ops: separate cache entries, two runs.
    assert_eq!(server.sims_run(), 2);
}

#[test]
fn analyze_runs_no_cycles() {
    let server = Server::new(None);
    let frames = roundtrip(&server, &[r#"{"op":"analyze","workload":"spmv"}"#.to_string()]);
    let result = field(result_frame(&frames), "result");
    assert!(result.get("analysis").is_some());
    assert_eq!(server.sims_run(), 0, "analyze must not simulate");
}

#[test]
fn errors_are_frames_not_hangups() {
    let server = Server::new(None);
    let frames = roundtrip(
        &server,
        &[
            r#"{"id":9,"op":"simulate","workload":"matmul9000"}"#.to_string(),
            r#"{"id":10,"op":"resume","workload":"spmv","snapshot":"ffffffffffffffff"}"#
                .to_string(),
            "this is not json".to_string(),
            // The connection survives all of the above.
            r#"{"id":11,"op":"analyze","workload":"spmv"}"#.to_string(),
        ],
    );
    let errors: Vec<&Value> = frames.iter().filter(|f| event(f) == "error").collect();
    assert_eq!(errors.len(), 3);
    assert!(field(errors[0], "message").as_str().unwrap().contains("unknown workload"));
    assert!(field(errors[1], "message").as_str().unwrap().contains("unknown snapshot"));
    assert!(field(errors[2], "message").as_str().unwrap().contains("bad request JSON"));
    assert_eq!(event(result_frame(&frames)), "result");
    assert_eq!(field(result_frame(&frames), "id").as_u64(), Some(11));
}

#[test]
fn an_idle_connection_does_not_block_other_clients() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    let server = Server::new(None);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|s| {
        let serve = s.spawn(|| server.serve(&listener));

        // A client that connects and never sends a byte must not starve
        // the client behind it.
        let idle = TcpStream::connect(addr).unwrap();
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.set_read_timeout(Some(std::time::Duration::from_secs(120))).unwrap();
        writeln!(busy, r#"{{"op":"analyze","workload":"spmv"}}"#).unwrap();
        busy.flush().unwrap();
        let mut reader = BufReader::new(busy.try_clone().unwrap());
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up mid-request");
            let frame = Value::parse(line.trim()).unwrap();
            let ev = frame.get("event").and_then(Value::as_str).unwrap();
            assert_ne!(ev, "error", "{frame}");
            if ev == "result" {
                break;
            }
        }

        // Shutdown from a third client stops the whole service even
        // though the idle connection never spoke.
        let mut ctl = TcpStream::connect(addr).unwrap();
        writeln!(ctl, r#"{{"op":"shutdown"}}"#).unwrap();
        ctl.flush().unwrap();
        serve.join().unwrap().unwrap();
        assert!(server.is_shutdown());
        drop(idle);
    });
}

#[test]
fn shutdown_acknowledges_and_closes() {
    let server = Server::new(None);
    let frames = roundtrip(
        &server,
        &[
            r#"{"id":1,"op":"shutdown"}"#.to_string(),
            // Never reached: the connection closes on shutdown.
            r#"{"id":2,"op":"analyze","workload":"spmv"}"#.to_string(),
        ],
    );
    assert_eq!(frames.len(), 1);
    assert_eq!(event(&frames[0]), "result");
    assert!(server.is_shutdown());
}
