//! Kernel launch specifications.

use gsi_isa::Program;
use gsi_sm::WarpInit;

/// Where a block landed: the SM and the hardware block slot it occupies.
///
/// The slot determines the block's scratchpad/stash partition (slot `k` of
/// an SM owns bytes `k * chunk .. (k+1) * chunk` of its local memory); the
/// SM id plays the role of CUDA's `%smid`, which the UTSD workload uses to
/// pick its per-SM task queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchCtx {
    /// SM index the block was dispatched to.
    pub sm: u8,
    /// Hardware block slot occupied while resident.
    pub slot: usize,
}

/// A per-warp register initializer: called with the warp's registers, the
/// block id, the warp index within the block, and the launch context.
type WarpInitFn = Box<dyn Fn(&mut WarpInit, u64, usize, LaunchCtx)>;

/// Everything needed to launch a kernel: the program, the grid shape, and a
/// per-warp register initializer.
///
/// The initializer plays the role of CUDA's special registers and kernel
/// arguments: it is called once per warp at dispatch with the block id, the
/// warp index within the block, and a [`LaunchCtx`] naming the SM the
/// block landed on and the hardware block slot it occupies.
pub struct LaunchSpec {
    /// The kernel.
    pub program: Program,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u64,
    /// Warps per thread block.
    pub warps_per_block: usize,
    init: WarpInitFn,
}

impl std::fmt::Debug for LaunchSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaunchSpec")
            .field("program", &self.program.name())
            .field("grid_blocks", &self.grid_blocks)
            .field("warps_per_block", &self.warps_per_block)
            .finish_non_exhaustive()
    }
}

impl LaunchSpec {
    /// A launch of `grid_blocks` blocks of `warps_per_block` warps, with
    /// all registers zeroed.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    pub fn new(program: Program, grid_blocks: u64, warps_per_block: usize) -> Self {
        assert!(grid_blocks > 0, "empty grid");
        assert!(warps_per_block > 0, "empty blocks");
        LaunchSpec { program, grid_blocks, warps_per_block, init: Box::new(|_, _, _, _| {}) }
    }

    /// Set the per-warp register initializer
    /// `(warp, block_id, warp_in_block, ctx)`.
    #[must_use]
    pub fn with_init(mut self, f: impl Fn(&mut WarpInit, u64, usize, LaunchCtx) + 'static) -> Self {
        self.init = Box::new(f);
        self
    }

    /// Build the initial register state for one warp.
    pub fn init_warp(&self, block: u64, warp: usize, ctx: LaunchCtx) -> WarpInit {
        let mut w = WarpInit::zeroed();
        (self.init)(&mut w, block, warp, ctx);
        w
    }

    /// Total warps in the grid.
    pub fn total_warps(&self) -> u64 {
        self.grid_blocks * self.warps_per_block as u64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_isa::ProgramBuilder;

    fn prog() -> Program {
        let mut b = ProgramBuilder::new("t");
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn init_receives_coordinates() {
        let spec = LaunchSpec::new(prog(), 3, 2).with_init(|w, block, warp, ctx| {
            w.set_uniform(
                0,
                block * 1000 + warp as u64 * 100 + ctx.sm as u64 * 10 + ctx.slot as u64,
            );
        });
        let w = spec.init_warp(2, 1, LaunchCtx { sm: 4, slot: 3 });
        assert_eq!(w.regs[0][0], 2143);
        assert_eq!(spec.total_warps(), 6);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        LaunchSpec::new(prog(), 0, 1);
    }
}
