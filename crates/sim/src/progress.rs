//! The forward-progress watchdog's diagnostic dump.
//!
//! When a kernel stops retiring instructions (or exhausts its cycle
//! budget), a bare "timed out" is useless for root-causing: the interesting
//! state — which warps are stuck on what, which queues are full, what is
//! still in flight — is gone by the time the error surfaces. The watchdog
//! instead snapshots the whole machine into a [`ProgressReport`] at the
//! moment it gives up, so a hang explains itself.

use gsi_core::{MemStructCause, StallBreakdown, StallKind};
use gsi_sm::WarpSnapshot;
use std::fmt;
use std::fmt::Write as _;

/// Why the watchdog stopped the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutKind {
    /// The configured `max_cycles` budget was exhausted.
    CycleBudget,
    /// No progress signal (instruction retired, block completed, or mesh
    /// message sent) changed for the configured `progress_window`.
    NoForwardProgress,
}

impl fmt::Display for TimeoutKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeoutKind::CycleBudget => f.write_str("cycle budget exhausted"),
            TimeoutKind::NoForwardProgress => f.write_str("no forward progress"),
        }
    }
}

/// Per-SM slice of a [`ProgressReport`]: pipeline position, queue
/// occupancies, and a stall-state snapshot of every resident warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmProgress {
    /// SM index.
    pub sm: u8,
    /// Warps that have not exited.
    pub active_warps: usize,
    /// Instructions this SM has issued over its lifetime.
    pub instructions: u64,
    /// MSHR entries allocated / total.
    pub mshr_occupancy: usize,
    /// MSHR capacity.
    pub mshr_capacity: usize,
    /// Store-buffer entries occupied / total.
    pub store_buffer_occupancy: usize,
    /// Store-buffer capacity.
    pub store_buffer_capacity: usize,
    /// Kernel-end stash writebacks still queued.
    pub endflush_backlog: usize,
    /// The flush engine is mid-drain.
    pub flushing: bool,
    /// Atomics issued but not yet serviced.
    pub outstanding_atomics: usize,
    /// The DMA engine still has work.
    pub dma_busy: bool,
    /// The stall breakdown accumulated so far this kernel.
    pub breakdown: StallBreakdown,
    /// Stall-state snapshot of every resident warp.
    pub warps: Vec<WarpSnapshot>,
}

impl SmProgress {
    /// Warps stuck in a named wait state (anything but issuable/exited).
    pub fn stalled_warps(&self) -> impl Iterator<Item = &WarpSnapshot> {
        self.warps.iter().filter(|w| w.active && w.stall_state() != "issuable")
    }
}

/// A snapshot of the whole machine taken by the forward-progress watchdog
/// the moment it aborted a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressReport {
    /// Why the watchdog fired.
    pub kind: TimeoutKind,
    /// Cycles simulated for this kernel before giving up.
    pub cycles_run: u64,
    /// Cycles since the last observed progress signal.
    pub stalled_for: u64,
    /// Blocks completed / dispatched / total.
    pub blocks_done: u64,
    /// Blocks handed to SMs so far.
    pub blocks_dispatched: u64,
    /// Blocks in the grid.
    pub blocks_total: u64,
    /// Messages currently in flight on the mesh.
    pub mesh_in_flight: usize,
    /// Per-SM state.
    pub sms: Vec<SmProgress>,
}

impl ProgressReport {
    /// Heuristic: the resource most plausibly starving the machine, as a
    /// stable lower-case name (`"mshr"`, `"store-buffer"`, `"barrier"`,
    /// `"synchronization"`, `"memory-data"`, `"mesh"`, `"dma"`), or
    /// `"unknown"` when nothing stands out.
    ///
    /// The heuristic looks at hard occupancy evidence first (a full MSHR or
    /// store buffer on any SM), then at what the stalled warps are waiting
    /// on, then at the dominant structural stall cause in the accumulated
    /// breakdowns, and finally at residual in-flight machinery.
    pub fn starved_resource(&self) -> &'static str {
        if self.sms.iter().any(|s| s.mshr_capacity > 0 && s.mshr_occupancy >= s.mshr_capacity) {
            return "mshr";
        }
        if self.sms.iter().any(|s| {
            s.store_buffer_capacity > 0 && s.store_buffer_occupancy >= s.store_buffer_capacity
        }) {
            return "store-buffer";
        }
        let mut barrier = 0usize;
        let mut sync = 0usize;
        let mut load_wait = 0usize;
        let mut live = 0usize;
        for sm in &self.sms {
            for w in &sm.warps {
                if !w.active {
                    continue;
                }
                live += 1;
                match w.stall_state() {
                    "barrier" => barrier += 1,
                    "sync" => sync += 1,
                    "load-wait" => load_wait += 1,
                    _ => {}
                }
            }
        }
        if live > 0 && barrier == live {
            return "barrier";
        }
        if live > 0 && sync + barrier == live {
            return "synchronization";
        }
        if live > 0 && load_wait == live {
            return "memory-data";
        }
        // Dominant structural cause across the accumulated breakdowns: the
        // strongest signal when warps are bounced at issue (e.g. a wedged
        // MSHR rejects every access while staying empty).
        let mut struct_totals = [0u64; 5];
        let mut total_struct = 0u64;
        for sm in &self.sms {
            for (cause, n) in sm.breakdown.iter_mem_struct() {
                struct_totals[cause.index()] += n;
                total_struct += n;
            }
        }
        let stall_total: u64 =
            self.sms.iter().map(|s| s.breakdown.total_stall_cycles()).sum::<u64>().max(1);
        if total_struct * 2 > stall_total {
            let (best, _) = MemStructCause::ALL
                .into_iter()
                .map(|c| (c, struct_totals[c.index()]))
                .max_by_key(|&(_, n)| n)
                .unwrap_or((MemStructCause::MshrFull, 0));
            return match best {
                MemStructCause::MshrFull => "mshr",
                MemStructCause::StoreBufferFull => "store-buffer",
                MemStructCause::BankConflict => "bank-conflict",
                MemStructCause::PendingRelease => "pending-release",
                MemStructCause::PendingDma => "dma",
            };
        }
        let mem_data: u64 =
            self.sms.iter().map(|s| s.breakdown.cycles(StallKind::MemoryData)).sum();
        if mem_data * 2 > stall_total {
            return "memory-data";
        }
        if self.sms.iter().any(|s| s.dma_busy) {
            return "dma";
        }
        if self.mesh_in_flight > 0 {
            return "mesh";
        }
        "unknown"
    }

    /// Total warps stuck in a named wait state across the machine.
    pub fn stalled_warp_count(&self) -> usize {
        self.sms.iter().map(|s| s.stalled_warps().count()).sum()
    }

    /// Render the report as an ASCII table in the style of the gsi-trace
    /// renderers: a machine summary line, then one row per SM, then the
    /// stalled warps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "watchdog: {} after {} cycles ({} since last progress)",
            self.kind, self.cycles_run, self.stalled_for
        );
        let _ = writeln!(
            out,
            "blocks {}/{} done ({} dispatched) | mesh in-flight {} | starved resource: {}",
            self.blocks_done,
            self.blocks_total,
            self.blocks_dispatched,
            self.mesh_in_flight,
            self.starved_resource()
        );
        let _ = writeln!(
            out,
            "{:<4} {:>6} {:>8} {:>9} {:>9} {:>8} {:>7} {:>6} {:>5}",
            "sm", "warps", "instrs", "mshr", "sbuf", "endflsh", "atomics", "flush", "dma"
        );
        for sm in &self.sms {
            let _ = writeln!(
                out,
                "{:<4} {:>6} {:>8} {:>5}/{:<3} {:>5}/{:<3} {:>8} {:>7} {:>6} {:>5}",
                sm.sm,
                sm.active_warps,
                sm.instructions,
                sm.mshr_occupancy,
                sm.mshr_capacity,
                sm.store_buffer_occupancy,
                sm.store_buffer_capacity,
                sm.endflush_backlog,
                sm.outstanding_atomics,
                if sm.flushing { "yes" } else { "no" },
                if sm.dma_busy { "yes" } else { "no" }
            );
        }
        let mut any = false;
        for sm in &self.sms {
            for w in sm.stalled_warps() {
                if !any {
                    let _ = writeln!(out, "stalled warps:");
                    any = true;
                }
                let _ = writeln!(
                    out,
                    "  sm {} warp {}: {} at pc {} (last issue cycle {})",
                    sm.sm,
                    w.warp,
                    w.stall_state(),
                    w.pc,
                    w.last_issue
                );
            }
        }
        if !any {
            let _ = writeln!(out, "stalled warps: none (warps issuable but bounced at the LSU)");
        }
        out
    }
}

impl fmt::Display for ProgressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} cycles: {}/{} blocks, {} stalled warps, starved resource {}",
            self.kind,
            self.cycles_run,
            self.blocks_done,
            self.blocks_total,
            self.stalled_warp_count(),
            self.starved_resource()
        )
    }
}
