//! Whole-system configuration (Table 5.1 of the paper).

use gsi_core::CyclePriority;
use gsi_mem::{LocalMemKind, MemConfig, Protocol};
use gsi_noc::MeshConfig;
use gsi_sm::{SchedPolicy, SmConfig};

/// Configuration of the simulated heterogeneous system.
///
/// [`SystemConfig::paper`] reproduces Table 5.1: one CPU and 15 GPU SMs on a
/// 4×4 mesh, private L1s, a banked 4 MB NUCA L2, 32-entry MSHRs and store
/// buffers, and 16 KB scratchpad/stash with 32 banks. The emergent latency
/// windows match the table: L1 hits in 1 cycle, L2 hits in ~29–61 cycles,
/// remote L1 hits in ~35–83 cycles, and main memory in ~197–261 cycles
/// (validated by the `latency_windows` integration test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// SM pipeline parameters.
    pub sm: SmConfig,
    /// Mesh interconnect parameters.
    pub mesh: MeshConfig,
    /// Number of GPU SMs (the paper uses 15, with one mesh node left for
    /// the CPU; case study 2 uses 1).
    pub gpu_cores: usize,
    /// Safety limit: a kernel that exceeds this many cycles aborts with
    /// [`SimError::Timeout`](crate::SimError::Timeout).
    pub max_cycles: u64,
    /// Forward-progress watchdog: if no progress signal (instruction
    /// issued, block completed, or mesh message sent) changes for this many
    /// cycles, the run aborts with a diagnostic
    /// [`ProgressReport`](crate::ProgressReport) instead of burning the
    /// rest of the `max_cycles` budget. 0 disables the watchdog.
    pub progress_window: u64,
    /// What the static-analysis pre-flight gate does with its findings
    /// before any cycle is simulated.
    pub analysis_gate: AnalysisGate,
    /// How the simulator advances time: dense per-cycle ticking, or the
    /// event-driven skip-ahead calendar (bit-identical results, much
    /// faster on memory-bound kernels).
    pub cycle_engine: CycleEngine,
}

/// How [`Simulator::run_kernel`](crate::Simulator::run_kernel) advances
/// simulated time.
///
/// Both engines produce bit-identical results — cycle counts, stall
/// breakdowns, timelines, warp profiles — on every workload; the dense
/// loop is kept as the differential-testing oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleEngine {
    /// Tick every subsystem every cycle (the original loop; the oracle).
    Dense,
    /// Consult each subsystem's next-wake calendar and jump the clock over
    /// provably quiet stretches, bulk-crediting the skipped cycles to the
    /// same per-warp stall categories the dense loop would have recorded.
    #[default]
    Event,
}

/// The pre-flight static-analysis gate
/// ([`Simulator::run_kernel`](crate::Simulator::run_kernel) runs
/// `gsi-analyze` over every launched program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisGate {
    /// Skip analysis entirely (zero overhead).
    Off,
    /// Analyze and keep the report available, but never refuse a launch.
    Warn,
    /// Analyze and refuse launches whose report contains `Error`-severity
    /// findings with [`SimError::Analysis`](crate::SimError::Analysis).
    #[default]
    Deny,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl SystemConfig {
    /// The paper's system: 15 SMs + 1 CPU on a 4×4 mesh.
    pub fn paper() -> Self {
        SystemConfig {
            mem: MemConfig::default(),
            sm: SmConfig::default(),
            mesh: MeshConfig::default(),
            gpu_cores: 15,
            max_cycles: 200_000_000,
            progress_window: 2_000_000,
            analysis_gate: AnalysisGate::Deny,
            cycle_engine: CycleEngine::Event,
        }
    }

    /// Use `n` GPU SMs (1 for the paper's second case study).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or does not leave a mesh node for the CPU.
    #[must_use]
    pub fn with_gpu_cores(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one SM");
        assert!(n < self.mesh.nodes(), "one mesh node must remain for the CPU");
        self.gpu_cores = n;
        self
    }

    /// Select the GPU L1 coherence protocol.
    #[must_use]
    pub fn with_protocol(mut self, p: Protocol) -> Self {
        self.mem.protocol = p;
        self
    }

    /// Select the local-memory structure (case study 2).
    #[must_use]
    pub fn with_local_mem(mut self, kind: LocalMemKind) -> Self {
        self.mem.local_kind = kind;
        self
    }

    /// Scale the MSHR (and, per the paper's sweep, the store buffer).
    #[must_use]
    pub fn with_mshr(mut self, entries: usize) -> Self {
        self.mem = self.mem.with_mshr(entries);
        self
    }

    /// Select the warp scheduling policy.
    #[must_use]
    pub fn with_scheduler(mut self, policy: SchedPolicy) -> Self {
        self.sm.scheduler = policy;
        self
    }

    /// Select the Algorithm-2 cycle classification priority (the paper's
    /// memory-focused order by default).
    #[must_use]
    pub fn with_cycle_priority(mut self, priority: CyclePriority) -> Self {
        self.sm.cycle_priority = priority;
        self
    }

    /// Set the forward-progress watchdog window (0 disables it).
    #[must_use]
    pub fn with_progress_window(mut self, cycles: u64) -> Self {
        self.progress_window = cycles;
        self
    }

    /// Set the store-buffer flush drain rate (lines per cycle).
    #[must_use]
    pub fn with_flush_rate(mut self, rate: u32) -> Self {
        self.mem.flush_rate = rate.max(1);
        self
    }

    /// Enable the QuickRelease-style S-FIFO (stores keep issuing while a
    /// release drains) — the optimization Section 6.1.4 of the paper
    /// predicts would remove pending-release stalls.
    #[must_use]
    pub fn with_sfifo(mut self, enabled: bool) -> Self {
        self.mem.sfifo = enabled;
        self
    }

    /// Enable DeNovo owned atomics (atomics acquire line ownership and are
    /// serviced at the owning L1 thereafter).
    #[must_use]
    pub fn with_owned_atomics(mut self, enabled: bool) -> Self {
        self.mem.owned_atomics = enabled;
        self
    }

    /// Set the owner-L1 access latency for DeNovo remote fills.
    #[must_use]
    pub fn with_remote_l1_latency(mut self, cycles: u64) -> Self {
        self.mem.remote_l1_latency = cycles;
        self
    }

    /// Choose what the static-analysis pre-flight gate does (default:
    /// [`AnalysisGate::Deny`]).
    #[must_use]
    pub fn with_analysis_gate(mut self, gate: AnalysisGate) -> Self {
        self.analysis_gate = gate;
        self
    }

    /// Choose the cycle engine (default: [`CycleEngine::Event`]).
    #[must_use]
    pub fn with_cycle_engine(mut self, engine: CycleEngine) -> Self {
        self.cycle_engine = engine;
        self
    }

    /// A human-readable rendering of Table 5.1 for this configuration.
    pub fn table_5_1(&self) -> String {
        format!(
            "Table 5.1: Parameters of the simulated heterogeneous system\n\
             CPU Parameters\n\
             \x20 Cores                               1 (launch node)\n\
             GPU Parameters\n\
             \x20 SMs used                            {}\n\
             \x20 Scratchpad/stash size               {} KB\n\
             \x20 Scratchpad/stash banks              {}\n\
             Memory Hierarchy Parameters\n\
             \x20 L1/scratchpad hit latency           {} cycle\n\
             \x20 L1 size ({} banks, {}-way)           {} KB\n\
             \x20 L2 size ({} banks, NUCA)            {} MB\n\
             \x20 MSHR entries                        {}\n\
             \x20 Store buffer entries                {}\n\
             \x20 Protocol                            {}\n\
             \x20 Local memory                        {:?}\n",
            self.gpu_cores,
            self.mem.scratch_bytes / 1024,
            self.mem.scratch_banks,
            self.mem.l1_hit_latency,
            self.mem.l1_banks,
            self.mem.l1_ways,
            self.mem.l1_bytes / 1024,
            self.mem.l2_banks,
            self.mem.l2_bytes / (1024 * 1024),
            self.mem.mshr_entries,
            self.mem.store_buffer_entries,
            self.mem.protocol,
            self.mem.local_kind,
        )
    }
}

gsi_json::json_struct!(SystemConfig {
    mem,
    sm,
    mesh,
    gpu_cores,
    max_cycles,
    progress_window,
    analysis_gate,
    cycle_engine
});
gsi_json::json_unit_enum!(AnalysisGate { Off, Warn, Deny });
gsi_json::json_unit_enum!(CycleEngine { Dense, Event });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table() {
        let c = SystemConfig::paper();
        assert_eq!(c.gpu_cores, 15);
        assert_eq!(c.mesh.nodes(), 16);
        assert_eq!(c.mem.mshr_entries, 32);
        let t = c.table_5_1();
        assert!(t.contains("15"));
        assert!(t.contains("4 MB"));
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_protocol(Protocol::DeNovo)
            .with_local_mem(LocalMemKind::Stash)
            .with_mshr(256);
        assert_eq!(c.gpu_cores, 1);
        assert_eq!(c.mem.protocol, Protocol::DeNovo);
        assert_eq!(c.mem.local_kind, LocalMemKind::Stash);
        assert_eq!(c.mem.mshr_entries, 256);
        assert_eq!(c.mem.store_buffer_entries, 256);
    }

    #[test]
    #[should_panic(expected = "CPU")]
    fn too_many_cores_panics() {
        let _ = SystemConfig::paper().with_gpu_cores(16);
    }
}
