//! The wired simulator and kernel execution loop.

use crate::config::{AnalysisGate, CycleEngine, SystemConfig};
use crate::launch::{LaunchCtx, LaunchSpec};
use crate::progress::{ProgressReport, SmProgress, TimeoutKind};
use gsi_analyze::{
    AnalysisReport, AnalyzeOptions, Baseline, EntryProbe, EntryState, Geom, ProtocolClass,
};
use gsi_blame::{BlameCollector, BlameReport};
use gsi_chaos::{ChaosEngine, ChaosStats, FaultPlan};
use gsi_core::{ConservationError, StallBreakdown, StallCollector};
use gsi_mem::{CoreMemStats, CoreMemUnit, GlobalMem, L2Stats, MemMsg, SharedMem};
use gsi_noc::{Mesh, NocStats, NodeId};
use gsi_sm::{SmCore, SmStats, SmWake, WarpInit, WarpProfile};
use gsi_trace::{Subsystem, TraceBuffer, TraceConfig, TraceLevel};
use std::fmt;
use std::time::Instant;

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel did not complete: either the cycle budget ran out or the
    /// forward-progress watchdog saw nothing move for too long — usually a
    /// livelocked workload (e.g. a lock never released) or a wedged
    /// resource. The attached [`ProgressReport`] snapshots the machine at
    /// the moment it gave up.
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
        /// Blocks that had completed.
        blocks_done: u64,
        /// Blocks in the grid.
        blocks_total: u64,
        /// Full diagnostic dump: per-warp stall state, queue occupancies,
        /// in-flight traffic, and the starved-resource heuristic.
        report: Box<ProgressReport>,
    },
    /// A stall collector's end-of-run conservation check failed: the
    /// breakdown no longer partitions the observed cycles. A simulator bug,
    /// not a workload property.
    Accounting {
        /// The SM whose collector is corrupted.
        sm: u8,
        /// The violated invariant.
        error: ConservationError,
    },
    /// The static-analysis pre-flight gate
    /// ([`AnalysisGate::Deny`](crate::AnalysisGate::Deny)) refused the
    /// launch: the kernel's report contains `Error`-severity findings, so
    /// its stall profile would be meaningless. The full report (including
    /// warnings and rendered snippets) is attached.
    Analysis {
        /// The refused kernel's name.
        kernel: String,
        /// Number of `Error`-severity findings.
        errors: usize,
        /// The complete analysis report.
        report: Box<AnalysisReport>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles, blocks_done, blocks_total, report } => write!(
                f,
                "kernel timed out after {cycles} cycles \
                 ({blocks_done}/{blocks_total} blocks done): {report}"
            ),
            SimError::Accounting { sm, error } => {
                write!(f, "stall accounting corrupted on SM {sm}: {error}")
            }
            SimError::Analysis { kernel, errors, report } => {
                write!(
                    f,
                    "static analysis refused kernel `{kernel}` \
                     ({errors} error(s)):\n{report}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The result of one kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRun {
    /// GPU cycles from launch to full drain (including the end-of-kernel
    /// store-buffer flush and stash writeback, which the paper's release
    /// semantics of kernel exit require).
    pub cycles: u64,
    /// Aggregate stall breakdown over all SMs (the paper's figures).
    pub breakdown: StallBreakdown,
    /// Per-SM breakdowns.
    pub per_sm: Vec<StallBreakdown>,
    /// Per-SM pipeline statistics.
    pub sm_stats: Vec<SmStats>,
    /// Per-SM memory statistics.
    pub mem_stats: Vec<CoreMemStats>,
    /// Shared L2/DRAM statistics (cumulative over the simulator lifetime).
    pub l2_stats: L2Stats,
    /// Mesh statistics (cumulative over the simulator lifetime).
    pub noc_stats: NocStats,
    /// Total instructions issued across SMs during this kernel.
    pub instructions: u64,
    /// Per-SM epoch series (empty unless
    /// [`Simulator::set_timeline_epoch`] enabled it): one breakdown per
    /// epoch per SM.
    pub timelines: Vec<Vec<StallBreakdown>>,
    /// Per-SM, per-warp issue-stage profiles (Algorithm-1 classifications
    /// of each warp's considered instructions).
    pub warp_profiles: Vec<Vec<WarpProfile>>,
}

gsi_json::json_struct!(KernelRun {
    cycles,
    breakdown,
    per_sm,
    sm_stats,
    mem_stats,
    l2_stats,
    noc_stats,
    instructions,
    timelines,
    warp_profiles,
});

struct Core {
    sm: SmCore,
    mem: CoreMemUnit,
    collector: StallCollector,
}

/// Mid-kernel execution state carried between [`Simulator::run_until`]
/// slices (and across a snapshot/restore round trip).
#[derive(Debug, Clone, PartialEq)]
struct KernelProgress {
    /// Cycle the kernel launched at.
    start: u64,
    /// Next grid block to dispatch.
    next_block: u64,
    /// Blocks retired so far.
    blocks_done: u64,
    /// The end-of-kernel release flush has begun.
    end_flush: bool,
    /// Per-SM statistics at launch, for per-kernel deltas.
    sm_stats_before: Vec<SmStats>,
}

gsi_json::json_struct!(KernelProgress {
    start,
    next_block,
    blocks_done,
    end_flush,
    sm_stats_before,
});

/// Reusable buffers for the per-cycle simulation loop. Capacities reach a
/// steady state early in a kernel, after which the loop performs no heap
/// allocation for message plumbing (see `tests/alloc_free.rs`).
#[derive(Default)]
struct SimScratch {
    /// Mesh deliveries due this cycle.
    deliveries: Vec<(NodeId, MemMsg)>,
    /// Outgoing messages drained from one core's memory unit.
    outbox: Vec<(NodeId, MemMsg)>,
    /// Ids of blocks that finished this cycle.
    completed: Vec<u64>,
    /// Warp initializers for the block being dispatched (drained into the
    /// SM by `add_block_from`, so dispatch allocates nothing per block
    /// once capacities have warmed up).
    warp_inits: Vec<WarpInit>,
}

/// Earliest of two optional wake times (the event calendar's reducer).
fn fold_wake(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// The integrated CPU-GPU system simulator.
///
/// Create one with a [`SystemConfig`], initialize global memory through
/// [`gmem_mut`](Self::gmem_mut), and execute kernels with
/// [`run_kernel`](Self::run_kernel). Global memory persists across kernels,
/// so multi-kernel workloads compose naturally.
pub struct Simulator {
    cfg: SystemConfig,
    gmem: GlobalMem,
    mesh: Mesh<MemMsg>,
    shared: SharedMem,
    cores: Vec<Core>,
    cycle: u64,
    profiling: bool,
    scratch: SimScratch,
    trace: TraceBuffer,
    chaos_plan: FaultPlan,
    last_analysis: Option<AnalysisReport>,
    baseline: Option<Baseline>,
    progress: Option<KernelProgress>,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("gpu_cores", &self.cores.len())
            .field("cycle", &self.cycle)
            .field("profiling", &self.profiling)
            .finish_non_exhaustive()
    }
}

/// Whether a message is addressed to the L2 bank co-located at a node
/// (requests) rather than the core there (responses and forwards).
fn bank_bound(msg: &MemMsg) -> bool {
    matches!(
        msg,
        MemMsg::GetLine { .. }
            | MemMsg::WriteWords { .. }
            | MemMsg::RegisterOwner { .. }
            | MemMsg::OwnerWriteback { .. }
            | MemMsg::AtomicOp { .. }
    )
}

impl Simulator {
    /// Build the system described by `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let core_nodes: Vec<NodeId> = (0..cfg.gpu_cores as u8).map(NodeId).collect();
        let cores = (0..cfg.gpu_cores as u8)
            .map(|i| Core {
                sm: SmCore::new(i, cfg.sm),
                mem: CoreMemUnit::new(i, NodeId(i), cfg.mem),
                collector: StallCollector::new(),
            })
            .collect();
        Simulator {
            gmem: GlobalMem::new(),
            mesh: Mesh::new(cfg.mesh),
            shared: SharedMem::new(cfg.mem, core_nodes),
            cores,
            cycle: 0,
            profiling: true,
            scratch: SimScratch::default(),
            trace: TraceBuffer::disabled(),
            chaos_plan: FaultPlan::disabled(),
            last_analysis: None,
            baseline: None,
            progress: None,
            cfg,
        }
    }

    /// Install (or clear) the accepted-findings baseline the pre-flight
    /// gate applies to every subsequent launch: findings whose content
    /// digest the baseline lists stay in the report but stop counting
    /// toward the gate's deny decision. This is how intentionally racy
    /// kernels (e.g. a global-lock work queue) are admitted explicitly.
    pub fn set_baseline(&mut self, baseline: Option<Baseline>) {
        self.baseline = baseline;
    }

    /// Arm deterministic fault injection: derive decorrelated per-component
    /// [`ChaosEngine`]s from the plan's seed and install them into the
    /// mesh, the shared L2/DRAM side, and every core's memory unit. An
    /// unarmed plan restores the zero-cost disabled engines.
    pub fn set_chaos(&mut self, plan: &FaultPlan) {
        self.chaos_plan = *plan;
        self.mesh.set_chaos(ChaosEngine::for_component(plan, 0));
        self.shared.set_chaos(ChaosEngine::for_component(plan, 1));
        for (i, c) in self.cores.iter_mut().enumerate() {
            c.mem.set_chaos(ChaosEngine::for_component(plan, 2 + i as u64));
        }
    }

    /// The fault plan currently armed (the disabled plan by default).
    pub fn chaos_plan(&self) -> &FaultPlan {
        &self.chaos_plan
    }

    /// Aggregate fault-injection counters across every component engine.
    pub fn chaos_stats(&self) -> ChaosStats {
        let mut total = ChaosStats::default();
        total.merge(self.mesh.chaos_stats());
        total.merge(self.shared.chaos_stats());
        for c in &self.cores {
            total.merge(c.mem.chaos_stats());
        }
        total
    }

    /// Snapshot the whole machine for the forward-progress watchdog. Only
    /// called when a run is being aborted; allocation here is fine.
    fn progress_report(
        &self,
        kind: TimeoutKind,
        cycles_run: u64,
        stalled_for: u64,
        blocks_done: u64,
        blocks_dispatched: u64,
        blocks_total: u64,
    ) -> Box<ProgressReport> {
        let sms = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut warps = Vec::new();
                c.sm.warp_snapshots(&mut warps);
                SmProgress {
                    sm: i as u8,
                    active_warps: c.sm.active_warps(),
                    instructions: c.sm.stats().instructions,
                    mshr_occupancy: c.mem.mshr_occupancy(),
                    mshr_capacity: c.mem.mshr_capacity(),
                    store_buffer_occupancy: c.mem.store_buffer_occupancy(),
                    store_buffer_capacity: c.mem.store_buffer_capacity(),
                    endflush_backlog: c.mem.endflush_backlog(),
                    flushing: c.mem.is_flushing(),
                    outstanding_atomics: c.mem.outstanding_atomic_count(),
                    dma_busy: c.mem.dma_busy(),
                    breakdown: c.collector.clone().finish(),
                    warps,
                }
            })
            .collect();
        Box::new(ProgressReport {
            kind,
            cycles_run,
            stalled_for,
            blocks_done,
            blocks_dispatched,
            blocks_total,
            mesh_in_flight: self.mesh.in_flight(),
            sms,
        })
    }

    /// The watchdog's progress signature: any change counts as forward
    /// progress. Instructions cover execution, blocks cover dispatch and
    /// retirement, mesh messages cover the end-of-kernel flush and DMA
    /// phases (which retire no instructions).
    fn progress_signature(&self, blocks_done: u64) -> (u64, u64, u64) {
        let instructions: u64 = self.cores.iter().map(|c| c.sm.stats().instructions).sum();
        (instructions, blocks_done, self.mesh.stats().messages)
    }

    /// Enable cycle-level tracing at `level`, sizing the trace buffers for
    /// this system ([`TraceConfig::for_system`]). `TraceLevel::Off` drops
    /// back to the free no-op sink.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace = TraceBuffer::new(TraceConfig::for_system(
            level,
            self.cfg.mesh.nodes(),
            self.cfg.gpu_cores,
            self.cfg.sm.max_warps,
        ));
    }

    /// Install a fully custom trace buffer (ring sizes, windows, ...).
    pub fn set_trace(&mut self, trace: TraceBuffer) {
        self.trace = trace;
    }

    /// The trace buffer (counters, histograms, events recorded so far).
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Mutable access to the trace buffer (reset, self-profiling toggles).
    pub fn trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.trace
    }

    /// Measure wall-clock time per simulator subsystem while running
    /// (recorded into the trace buffer's [`SubsystemProfile`]
    /// (gsi_trace::SubsystemProfile)).
    pub fn set_self_profiling(&mut self, on: bool) {
        self.trace.set_self_profiling(on);
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Functional global memory (read side).
    pub fn gmem(&self) -> &GlobalMem {
        &self.gmem
    }

    /// Functional global memory (write side), for workload initialization.
    pub fn gmem_mut(&mut self) -> &mut GlobalMem {
        &mut self.gmem
    }

    /// Additionally record per-epoch stall series (an Aerialvision-style
    /// timeline): one breakdown per `epoch_len` cycles per SM, returned in
    /// [`KernelRun::timelines`]. Pass 0 to disable.
    pub fn set_timeline_epoch(&mut self, epoch_len: u64) {
        for c in &mut self.cores {
            c.collector.set_epoch_len(epoch_len);
        }
    }

    /// Enable or disable GSI stall profiling (for overhead measurement).
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profiling = enabled;
        for c in &mut self.cores {
            c.collector.set_enabled(enabled);
        }
    }

    /// Enable or disable stall root-cause attribution (`gsi-blame`). Off
    /// by default; the attribution tables live in the SMs and accumulate
    /// across kernel launches, so multi-launch workloads (e.g. the BFS
    /// levels) report whole-run attribution.
    pub fn set_blame_enabled(&mut self, enabled: bool) {
        for c in &mut self.cores {
            c.sm.set_blame_enabled(enabled);
        }
    }

    /// Build the run-level blame report: every SM's attribution tables
    /// merged, dangling memory-data charges resolved, ranked by charged
    /// cycles. The report's `coverage_pct` qualifies the exported event
    /// window: attribution itself is collected live and is always
    /// complete, but when the full-level event ring wrapped, the Perfetto
    /// annotations only cover the retained tail.
    pub fn blame_report(&self) -> BlameReport {
        let mut merged = BlameCollector::new();
        merged.set_enabled(true);
        for c in &self.cores {
            merged.merge(c.sm.blame());
        }
        let dropped = self.trace.dropped_events();
        let coverage = if dropped == 0 {
            100.0
        } else {
            let retained = self.trace.events().count() as u64;
            retained as f64 * 100.0 / (retained + dropped) as f64
        };
        let program = self.cores.first().and_then(|c| c.sm.program());
        BlameReport::build(merged, program, coverage, dropped)
    }

    /// Current simulated GPU cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The analysis report of the most recent launch that went through an
    /// enabled gate (`None` before any launch, or when the gate is
    /// [`AnalysisGate::Off`]).
    pub fn last_analysis(&self) -> Option<&AnalysisReport> {
        self.last_analysis.as_ref()
    }

    /// Execute a kernel to completion (including the end-of-kernel flush).
    ///
    /// Always starts a fresh launch: any kernel left paused by
    /// [`run_until`](Self::run_until) is abandoned.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the kernel exceeds the configured
    /// `max_cycles`.
    pub fn run_kernel(&mut self, spec: &LaunchSpec) -> Result<KernelRun, SimError> {
        self.progress = None;
        self.begin_kernel(spec)?;
        match self.run_until(spec, u64::MAX)? {
            Some(run) => Ok(run),
            None => unreachable!("an unbounded run_until either completes or errors"),
        }
    }

    /// True while a kernel launched by [`begin_kernel`](Self::begin_kernel)
    /// has not yet run to completion.
    pub fn kernel_in_progress(&self) -> bool {
        self.progress.is_some()
    }

    /// Blocks retired by the in-progress kernel, or `None` when no kernel
    /// is in progress. With the launch's `grid_blocks` this gives a
    /// completion fraction for progress reporting between
    /// [`run_until`](Self::run_until) slices.
    pub fn blocks_completed(&self) -> Option<u64> {
        self.progress.as_ref().map(|p| p.blocks_done)
    }

    /// Launch a kernel without running any cycles: run the analysis gate,
    /// install the program, reset per-kernel state, and record the launch
    /// point. Drive it with [`run_until`](Self::run_until).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Analysis`] when the pre-flight gate refuses the
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if a kernel is already in progress.
    pub fn begin_kernel(&mut self, spec: &LaunchSpec) -> Result<(), SimError> {
        assert!(self.progress.is_none(), "a kernel is already in progress");
        if self.cfg.analysis_gate != AnalysisGate::Off {
            let report = analyze_launch_with(spec, &self.cfg, self.baseline.as_ref(), true);
            let errors = report.error_count();
            let deny = self.cfg.analysis_gate == AnalysisGate::Deny && errors > 0;
            // The report stays queryable through `last_analysis` even when
            // the launch is refused (the error carries its own copy).
            let refused = deny.then(|| Box::new(report.clone()));
            self.last_analysis = Some(report);
            if let Some(report) = refused {
                return Err(SimError::Analysis {
                    kernel: spec.program.name().to_string(),
                    errors,
                    report,
                });
            }
        }

        let sm_stats_before: Vec<SmStats> = self.cores.iter().map(|c| *c.sm.stats()).collect();

        // Kernel launch is an acquire: every SM self-invalidates its L1.
        for c in &mut self.cores {
            c.sm.set_program(spec.program.clone());
            c.collector.reset();
            c.mem.self_invalidate();
        }

        self.progress = Some(KernelProgress {
            start: self.cycle,
            next_block: 0,
            blocks_done: 0,
            end_flush: false,
            sm_stats_before,
        });
        Ok(())
    }

    /// Run the in-progress kernel until it completes or the clock reaches
    /// `stop`, whichever comes first. Returns `Ok(None)` when paused at
    /// `stop` (the kernel stays in progress — call again, or snapshot the
    /// machine), `Ok(Some(run))` when the kernel finished. A paused-and-
    /// resumed run is cycle-for-cycle identical to an uninterrupted one.
    ///
    /// `spec` must be the launch passed to
    /// [`begin_kernel`](Self::begin_kernel) (the spec itself is not stored,
    /// because launch initializers are closures).
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] on budget/progress exhaustion (measured from
    /// the original launch cycle, not the resume point);
    /// [`SimError::Accounting`] if a conservation check fails at kernel
    /// end. Either error abandons the in-progress kernel.
    ///
    /// # Panics
    ///
    /// Panics if no kernel is in progress.
    pub fn run_until(
        &mut self,
        spec: &LaunchSpec,
        stop: u64,
    ) -> Result<Option<KernelRun>, SimError> {
        let KernelProgress {
            start,
            mut next_block,
            mut blocks_done,
            mut end_flush,
            sm_stats_before,
        } = self.progress.take().expect("no kernel in progress; call begin_kernel first");

        let warps = spec.warps_per_block;
        let n_cores = self.cores.len() as u64;

        // Forward-progress watchdog state. The signature is re-sampled at an
        // explicit next-sample cycle so the steady-state loop pays one
        // comparison per cycle. Sampling every `min(PERIOD, window)` cycles
        // keeps windows shorter than the period meaningful (the old
        // power-of-two mask test silently quantized them up to 4096) and
        // gives the event engine a concrete cycle to clamp its skips to.
        // Recomputed per slice: the sample grid only affects when a hang is
        // *detected*, never the simulated state, so slicing stays
        // cycle-identical to a straight-through run.
        const WATCHDOG_PERIOD: u64 = 4096;
        let watchdog_period = WATCHDOG_PERIOD.min(self.cfg.progress_window.max(1));
        let mut next_watchdog = self.cycle + watchdog_period;
        let mut progress_sig = self.progress_signature(blocks_done);
        let mut last_progress = self.cycle;

        // The event engine skips stretches in which no subsystem can act.
        // Full event tracing and self-profiling observe individual cycles,
        // so they force the dense loop.
        let event_engine = self.cfg.cycle_engine == CycleEngine::Event
            && self.trace.level() != TraceLevel::Full
            && !self.trace.self_profiling();

        loop {
            let now = self.cycle;
            if now >= stop {
                self.progress = Some(KernelProgress {
                    start,
                    next_block,
                    blocks_done,
                    end_flush,
                    sm_stats_before,
                });
                return Ok(None);
            }
            if now - start > self.cfg.max_cycles {
                let report = self.progress_report(
                    TimeoutKind::CycleBudget,
                    now - start,
                    now - last_progress,
                    blocks_done,
                    next_block,
                    spec.grid_blocks,
                );
                return Err(SimError::Timeout {
                    cycles: now - start,
                    blocks_done,
                    blocks_total: spec.grid_blocks,
                    report,
                });
            }
            if self.cfg.progress_window > 0 && now >= next_watchdog {
                next_watchdog = now + watchdog_period;
                let sig = self.progress_signature(blocks_done);
                if sig != progress_sig {
                    progress_sig = sig;
                    last_progress = now;
                } else if now - last_progress >= self.cfg.progress_window {
                    let report = self.progress_report(
                        TimeoutKind::NoForwardProgress,
                        now - start,
                        now - last_progress,
                        blocks_done,
                        next_block,
                        spec.grid_blocks,
                    );
                    return Err(SimError::Timeout {
                        cycles: now - start,
                        blocks_done,
                        blocks_total: spec.grid_blocks,
                        report,
                    });
                }
            }

            let profiling = self.trace.self_profiling();
            let mut lap = profiling.then(Instant::now);
            // Lap the self-profiler: charge the time since the last lap to
            // `sub` and restart the clock. `lap` is None when profiling is
            // off, so the disabled path costs one branch per section.
            macro_rules! lap {
                ($sub:expr) => {
                    if let Some(t0) = lap {
                        let t1 = Instant::now();
                        self.trace.profile_add($sub, (t1 - t0).as_nanos() as u64);
                        lap = Some(t1);
                    }
                };
            }

            // 1. Mesh deliveries: requests to banks, responses to cores.
            self.mesh.deliver_into_traced(now, &mut self.scratch.deliveries, &mut self.trace);
            for (node, msg) in self.scratch.deliveries.drain(..) {
                if bank_bound(&msg) {
                    self.shared.deliver(now, node, msg);
                } else {
                    self.cores[node.0 as usize].mem.deliver_traced(now, msg, &mut self.trace);
                }
            }
            lap!(Subsystem::MeshDeliver);

            // 2. Shared side.
            self.shared.tick_traced(now, &mut self.mesh, &mut self.gmem, &mut self.trace);
            lap!(Subsystem::Shared);

            // 3. Block dispatch: blocks map to SMs round-robin (block id
            //    modulo SM count), waiting for their home SM to have room.
            while next_block < spec.grid_blocks {
                let sm = (next_block % n_cores) as usize;
                if !self.cores[sm].sm.has_capacity(warps) {
                    break;
                }
                let ctx = LaunchCtx { sm: sm as u8, slot: self.cores[sm].sm.peek_next_slot() };
                // One scratch buffer serves every dispatch: `add_block_from`
                // drains it into the SM, so no per-block Vec is allocated.
                self.scratch
                    .warp_inits
                    .extend((0..warps).map(|w| spec.init_warp(next_block, w, ctx)));
                self.cores[sm].sm.add_block_from(next_block, &mut self.scratch.warp_inits);
                next_block += 1;
            }
            lap!(Subsystem::Dispatch);

            // 4. Cores: memory unit first, then the SM issue stage.
            for c in &mut self.cores {
                c.mem.tick_traced(now, &mut self.trace);
                c.sm.tick_traced(
                    now,
                    &mut c.mem,
                    &mut self.gmem,
                    &mut c.collector,
                    &mut self.trace,
                );
                c.sm.drain_completed_blocks(&mut self.scratch.completed);
            }
            blocks_done += self.scratch.completed.len() as u64;
            self.scratch.completed.clear();
            lap!(Subsystem::Cores);

            // 5. Outgoing traffic.
            for (i, c) in self.cores.iter_mut().enumerate() {
                c.mem.drain_outbox(&mut self.scratch.outbox);
                for (dst, msg) in self.scratch.outbox.drain(..) {
                    self.mesh.send_traced(
                        now,
                        NodeId(i as u8),
                        dst,
                        msg.size_bytes(),
                        msg,
                        &mut self.trace,
                    );
                }
            }
            lap!(Subsystem::Outbox);
            if profiling {
                self.trace.profile_end_cycle();
            }

            // 6. Kernel end: once every block has finished, kernel exit acts
            //    as a release — flush store buffers and write back stashes,
            //    then wait for full quiescence.
            if !end_flush && blocks_done == spec.grid_blocks {
                for c in &mut self.cores {
                    c.mem.begin_kernel_end_flush();
                }
                end_flush = true;
            }
            if end_flush
                && self.mesh.in_flight() == 0
                && self.shared.quiescent()
                && self.cores.iter().all(|c| c.mem.drained())
            {
                self.cycle += 1;
                break;
            }
            self.cycle += 1;

            // 7. Event calendar: if no subsystem can act before cycle `t`,
            //    jump the clock there, crediting the skipped cycles to each
            //    SM's stall breakdown exactly as the dense loop would have
            //    (see `SmCore::skip_cycles`). A skip never crosses a
            //    watchdog sample or the cycle-budget boundary, so timeout
            //    behavior is identical to the dense loop's.
            if event_engine {
                let cur = self.cycle;
                let mut busy = next_block < spec.grid_blocks
                    && self.cores[(next_block % n_cores) as usize].sm.has_capacity(warps);
                let mut wake = fold_wake(self.mesh.next_delivery(), self.shared.next_wake());
                for c in &self.cores {
                    if busy {
                        break;
                    }
                    match c.sm.next_wake(cur) {
                        SmWake::Busy => busy = true,
                        SmWake::At(t) => wake = fold_wake(wake, Some(t)),
                        SmWake::Idle => {}
                    }
                    wake = fold_wake(wake, c.mem.next_wake(cur));
                }
                if !busy {
                    let mut target = wake.unwrap_or(u64::MAX);
                    if self.cfg.progress_window > 0 {
                        target = target.min(next_watchdog);
                    }
                    target =
                        target.min(start.saturating_add(self.cfg.max_cycles).saturating_add(1));
                    target = target.min(stop);
                    if target > cur {
                        let n = target - cur;
                        for c in &mut self.cores {
                            c.sm.skip_cycles(cur, n, &mut c.collector);
                        }
                        self.cycle = target;
                    }
                }
            }
        }

        // Always-on conservation check: every classified cycle must be
        // accounted for before the numbers are reported anywhere.
        for (i, c) in self.cores.iter().enumerate() {
            c.collector.validate().map_err(|error| SimError::Accounting { sm: i as u8, error })?;
        }

        // Gather results.
        let per_sm: Vec<StallBreakdown> =
            self.cores.iter().map(|c| c.collector.clone().finish()).collect();
        let breakdown: StallBreakdown = per_sm.iter().sum();
        let sm_stats: Vec<SmStats> = self.cores.iter().map(|c| *c.sm.stats()).collect();
        let instructions = sm_stats
            .iter()
            .zip(&sm_stats_before)
            .map(|(a, b)| a.instructions - b.instructions)
            .sum();
        let run = KernelRun {
            cycles: self.cycle - start,
            breakdown,
            per_sm,
            sm_stats,
            mem_stats: self.cores.iter().map(|c| *c.mem.stats()).collect(),
            l2_stats: *self.shared.stats(),
            noc_stats: *self.mesh.stats(),
            instructions,
            timelines: self.cores.iter_mut().map(|c| c.collector.take_epochs()).collect(),
            warp_profiles: self.cores.iter().map(|c| c.sm.warp_profiles().to_vec()).collect(),
        };
        for c in &mut self.cores {
            c.mem.reset_for_kernel();
        }
        Ok(Some(run))
    }

    /// Checkpoint format version, stored in every snapshot.
    pub const SNAPSHOT_FORMAT: u64 = 1;

    /// Serialize the entire machine — functional memory, mesh traffic, L2
    /// and DRAM state, every core's memory unit, SM, and stall collector,
    /// plus any mid-kernel execution state — as a gsi-json value.
    ///
    /// Snapshots are only meaningful at a cycle boundary: take them between
    /// [`run_until`](Self::run_until) slices (or between kernels). The
    /// trace buffer and the static-analysis report are diagnostics, not
    /// machine state, and are excluded; the launch spec is excluded too
    /// (initializers are closures), so [`restore`](Self::restore) re-takes
    /// it and validates it against the recorded program disassembly.
    ///
    /// The encoding is canonical: snapshotting the same machine state twice
    /// produces byte-identical compact JSON.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::{ToJson, Value};
        let program = match self.cores.first().and_then(|c| c.sm.program()) {
            Some(p) => Value::Str(gsi_isa::asm::disassemble(p)),
            None => Value::Null,
        };
        let cores: Vec<Value> = self
            .cores
            .iter()
            .map(|c| {
                gsi_json::obj! {
                    "sm" => c.sm.snapshot(),
                    "mem" => c.mem.snapshot(),
                    "collector" => c.collector.snapshot()
                }
            })
            .collect();
        gsi_json::obj! {
            "format" => Self::SNAPSHOT_FORMAT,
            "config" => self.cfg.to_json(),
            "cycle" => self.cycle,
            "profiling" => self.profiling,
            "chaos_plan" => self.chaos_plan.to_json(),
            "program" => program,
            "progress" => self.progress.to_json(),
            "gmem" => self.gmem.snapshot(),
            "mesh" => self.mesh.snapshot(),
            "shared" => self.shared.snapshot(),
            "cores" => Value::Array(cores)
        }
    }

    /// Rebuild a machine from a [`snapshot`](Self::snapshot).
    ///
    /// `spec` must be the launch the snapshot was taken under (or the one
    /// about to be resumed): its program is validated against the
    /// snapshot's recorded disassembly and re-installed, because compiled
    /// programs and launch closures do not round-trip through JSON. Resume
    /// with [`run_until`](Self::run_until) when the snapshot was mid-kernel.
    ///
    /// # Errors
    ///
    /// Fails on a format-version mismatch, a program mismatch, or any
    /// malformed / geometry-incompatible component state.
    pub fn restore(v: &gsi_json::Value, spec: &LaunchSpec) -> Result<Self, gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        let format: u64 = v.read("format")?;
        if format != Self::SNAPSHOT_FORMAT {
            return Err(JsonError::new(format!(
                "unsupported checkpoint format {format} (this build reads format {})",
                Self::SNAPSHOT_FORMAT
            )));
        }
        let cfg = crate::config::SystemConfig::from_json(v.req("config")?)?;
        let mut sim = Simulator::new(cfg);
        sim.cycle = v.read("cycle")?;
        sim.profiling = v.read("profiling")?;
        let plan = FaultPlan::from_json(v.req("chaos_plan")?)?;
        sim.set_chaos(&plan);
        let program = match v.req("program")? {
            Value::Null => None,
            Value::Str(text) => Some(text.as_str()),
            other => return Err(JsonError::expected("program text or null", other)),
        };
        if let Some(text) = program {
            if text != gsi_isa::asm::disassemble(&spec.program) {
                return Err(JsonError::new(
                    "checkpoint program does not match the provided launch spec".to_string(),
                ));
            }
        }
        sim.gmem.restore(v.req("gmem")?)?;
        sim.mesh.restore(v.req("mesh")?)?;
        sim.shared.restore(v.req("shared")?)?;
        let cores = match v.req("cores")? {
            Value::Array(cores) => cores,
            other => return Err(JsonError::expected("array", other)),
        };
        if cores.len() != sim.cores.len() {
            return Err(JsonError::new(format!(
                "checkpoint has {} cores, the configuration builds {}",
                cores.len(),
                sim.cores.len()
            )));
        }
        for (core, cv) in sim.cores.iter_mut().zip(cores) {
            if program.is_some() {
                core.sm.set_program(spec.program.clone());
            }
            core.sm.restore(cv.req("sm")?)?;
            core.mem.restore(cv.req("mem")?)?;
            core.collector.restore(cv.req("collector")?)?;
        }
        sim.progress = Option::<KernelProgress>::from_json(v.req("progress")?)?;
        Ok(sim)
    }
}

/// Statically analyze a launch the way the simulator's pre-flight gate
/// does (without a baseline); see [`analyze_launch_with`].
pub fn analyze_launch(spec: &LaunchSpec, cfg: &SystemConfig) -> AnalysisReport {
    analyze_launch_with(spec, cfg, None, true)
}

/// Statically analyze a launch the way the simulator's pre-flight gate
/// does: probe the launch initializer over a sample of (block, warp, SM,
/// slot) placements, fit per-register values to an affine model in the
/// warp and block ids ([`EntryState::fit`]), then run
/// [`gsi_analyze::analyze`] with the system's scratchpad size, the
/// launch geometry, and the protocol-derived race severity. `baseline`,
/// when given, suppresses explicitly accepted findings from the gate's
/// counts; `races: false` skips the whole-scenario race pass (the other
/// checks still run).
///
/// The block and warp axes are probed at `{0, 1, last}`: the unit steps
/// recover the per-axis coefficients, the far corner (and every other
/// probe) validates the fit. SM and block-slot placements are probed at
/// their corners too, so placement-dependent register values defeat the
/// validation and degrade soundly to the joined envelope.
pub fn analyze_launch_with(
    spec: &LaunchSpec,
    cfg: &SystemConfig,
    baseline: Option<&Baseline>,
    races: bool,
) -> AnalysisReport {
    let geom = Geom {
        warps_per_block: spec.warps_per_block.max(1) as u64,
        grid_blocks: spec.grid_blocks.max(1),
    };
    let blocks = axis3(spec.grid_blocks.saturating_sub(1));
    let warps = axis3(spec.warps_per_block.saturating_sub(1) as u64);
    let sms = axis2(cfg.gpu_cores.saturating_sub(1) as u64);
    let slots = axis2(cfg.sm.max_blocks.saturating_sub(1) as u64);
    let mut inits: Vec<(u64, u64, WarpInit)> = Vec::new();
    for &b in &blocks {
        for &w in &warps {
            for &s in &sms {
                for &l in &slots {
                    let ctx = LaunchCtx { sm: s as u8, slot: l as usize };
                    inits.push((b, w, spec.init_warp(b, w as usize, ctx)));
                }
            }
        }
    }
    let probes: Vec<EntryProbe<'_>> = inits
        .iter()
        .map(|(b, w, i)| EntryProbe { block: *b, warp: *w, regs: &i.regs, set: i.set_mask })
        .collect();
    let opts = AnalyzeOptions {
        entry: EntryState::fit(&probes, geom),
        scratch_bytes: Some(cfg.mem.scratch_bytes),
        warps_per_block: spec.warps_per_block,
        grid_blocks: spec.grid_blocks,
        protocol: match cfg.mem.protocol {
            gsi_mem::Protocol::DeNovo => ProtocolClass::DeNovo,
            gsi_mem::Protocol::GpuCoherence => ProtocolClass::GpuCoherence,
        },
        races,
        baseline: baseline.cloned(),
    };
    gsi_analyze::analyze(&spec.program, &opts)
}

/// The `{0, 1, hi}` sample of `0..=hi` (deduplicated, ascending).
fn axis3(hi: u64) -> Vec<u64> {
    let mut v = vec![0];
    if hi >= 1 {
        v.push(1);
    }
    if hi > 1 {
        v.push(hi);
    }
    v
}

/// The `{0, hi}` sample of `0..=hi` (deduplicated).
fn axis2(hi: u64) -> Vec<u64> {
    if hi == 0 {
        vec![0]
    } else {
        vec![0, hi]
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_core::StallKind;
    use gsi_isa::{MemSem, Operand, ProgramBuilder, Reg};
    use gsi_mem::Protocol;

    fn tiny_cfg() -> SystemConfig {
        SystemConfig::paper().with_gpu_cores(2)
    }

    #[test]
    fn empty_kernel_completes() {
        let mut b = ProgramBuilder::new("empty");
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 1, 1);
        let mut sim = Simulator::new(tiny_cfg());
        let run = sim.run_kernel(&spec).unwrap();
        assert!(run.cycles >= 1);
        assert_eq!(run.instructions, 1);
    }

    #[test]
    fn stores_become_visible_after_kernel() {
        let mut b = ProgramBuilder::new("store");
        b.st_global(Operand::Imm(99), Reg(1), 0);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 4, 1)
            .with_init(|w, block, _, _| w.set_uniform(1, 0x2000 + block * 8));
        let mut sim = Simulator::new(tiny_cfg());
        sim.run_kernel(&spec).unwrap();
        for blk in 0..4 {
            assert_eq!(sim.gmem().read_word(0x2000 + blk * 8), 99);
        }
    }

    #[test]
    fn loads_read_initialized_memory() {
        let mut b = ProgramBuilder::new("load");
        b.ld_global(Reg(2), Reg(1), 0);
        b.addi(Reg(2), Reg(2), 1);
        b.st_global(Reg(2), Reg(1), 8);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 1, 1)
            .with_init(|w, _, _, _| w.set_uniform(1, 0x3000));
        let mut sim = Simulator::new(tiny_cfg());
        sim.gmem_mut().write_word(0x3000, 41);
        let run = sim.run_kernel(&spec).unwrap();
        assert_eq!(sim.gmem().read_word(0x3008), 42);
        // The load-use gap appears as memory data stalls serviced at main
        // memory (cold caches).
        assert!(run.breakdown.mem_data_cycles(gsi_core::MemDataCause::MainMemory) > 0);
    }

    #[test]
    fn breakdown_partitions_total_cycles() {
        let mut b = ProgramBuilder::new("mix");
        b.ld_global(Reg(2), Reg(1), 0);
        b.addi(Reg(3), Reg(2), 1);
        b.st_global(Reg(3), Reg(1), 0);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 2, 2).with_init(|w, block, warp, _| {
            w.set_uniform(1, 0x4000 + block * 0x100 + warp as u64 * 0x40)
        });
        let mut sim = Simulator::new(tiny_cfg());
        let run = sim.run_kernel(&spec).unwrap();
        // Per-SM breakdown totals equal the kernel cycle count (every SM is
        // classified every cycle).
        for (i, b) in run.per_sm.iter().enumerate() {
            assert_eq!(b.total_cycles(), run.cycles, "sm {i}");
        }
        assert_eq!(run.breakdown.total_cycles(), run.cycles * 2);
    }

    #[test]
    fn atomics_serialize_across_sms() {
        // Both SMs atomically increment the same counter many times.
        let mut b = ProgramBuilder::new("count");
        b.ldi(Reg(1), 0x5000);
        b.ldi(Reg(4), 10);
        let top = b.here();
        b.atom_add(Reg(2), Reg(1), Operand::Imm(1), MemSem::Relaxed);
        // Wait for the result so increments are paced (and counted).
        b.addi(Reg(3), Reg(2), 0);
        b.subi(Reg(4), Reg(4), 1);
        b.bra_nz(Reg(4), top);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 2, 1);
        let mut sim = Simulator::new(tiny_cfg());
        sim.run_kernel(&spec).unwrap();
        assert_eq!(sim.gmem().read_word(0x5000), 20);
    }

    #[test]
    fn spin_lock_mutual_exclusion_across_sms() {
        // Classic test-and-set lock protecting a non-atomic counter.
        let lock = 0x6000u64;
        let counter = 0x6100u64;
        let mut b = ProgramBuilder::new("lock");
        b.ldi(Reg(1), lock);
        b.ldi(Reg(2), counter);
        b.ldi(Reg(6), 5); // iterations
        let loop_top = b.here();
        let acquire = b.here();
        b.atom_cas(Reg(3), Reg(1), Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
        b.bra_nz(Reg(3), acquire); // spin until CAS returns 0
        b.ld_global(Reg(4), Reg(2), 0); // critical section: counter += 1
        b.addi(Reg(4), Reg(4), 1);
        b.st_global(Reg(4), Reg(2), 0);
        b.atom_store(Reg(1), Operand::Imm(0), MemSem::Release); // unlock
        b.subi(Reg(6), Reg(6), 1);
        b.bra_nz(Reg(6), loop_top);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 2, 1);
        let mut sim = Simulator::new(tiny_cfg());
        let run = sim.run_kernel(&spec).unwrap();
        assert_eq!(sim.gmem().read_word(counter), 10, "no lost updates");
        assert_eq!(sim.gmem().read_word(lock), 0, "lock released");
        assert!(
            run.breakdown.cycles(StallKind::Synchronization) > 0,
            "lock contention shows as synchronization stalls"
        );
    }

    #[test]
    fn denovo_and_gpu_coherence_agree_functionally() {
        let mut results = Vec::new();
        for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
            let mut b = ProgramBuilder::new("func");
            b.ld_global(Reg(2), Reg(1), 0);
            b.alu(gsi_isa::AluOp::Mul, Reg(2), Reg(2), Operand::Imm(3));
            b.st_global(Reg(2), Reg(1), 0);
            b.exit();
            let spec = LaunchSpec::new(b.build().unwrap(), 4, 2).with_init(|w, blk, wp, _| {
                w.set_per_lane(1, move |l| 0x7000 + blk * 0x400 + wp as u64 * 0x100 + l as u64 * 8);
            });
            let mut sim = Simulator::new(tiny_cfg().with_protocol(protocol));
            for a in (0x7000..0x8000).step_by(8) {
                sim.gmem_mut().write_word(a, a);
            }
            sim.run_kernel(&spec).unwrap();
            let snapshot: Vec<u64> =
                (0x7000..0x8000).step_by(8).map(|a| sim.gmem().read_word(a)).collect();
            results.push(snapshot);
        }
        assert_eq!(results[0], results[1], "protocols must agree on values");
    }

    #[test]
    fn timeout_reports_progress() {
        // A kernel that spins forever on a lock nobody releases.
        let mut b = ProgramBuilder::new("hang");
        b.ldi(Reg(1), 0x8000);
        let spin = b.here();
        b.atom_cas(Reg(2), Reg(1), Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
        b.jmp_to(spin);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 1, 1);
        let mut cfg = tiny_cfg();
        cfg.max_cycles = 5_000;
        let mut sim = Simulator::new(cfg);
        sim.gmem_mut().write_word(0x8000, 1); // lock already held
        let err = sim.run_kernel(&spec).unwrap_err();
        assert!(err.to_string().contains("timed out"));
        match err {
            SimError::Timeout { blocks_done, blocks_total, .. } => {
                assert_eq!(blocks_done, 0);
                assert_eq!(blocks_total, 1);
            }
            other => panic!("expected timeout, got {other}"),
        }
    }

    #[test]
    fn full_tracing_records_events_across_subsystems() {
        let mut b = ProgramBuilder::new("traced");
        b.ld_global(Reg(2), Reg(1), 0);
        b.addi(Reg(3), Reg(2), 1);
        b.st_global(Reg(3), Reg(1), 0);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 2, 2).with_init(|w, block, warp, _| {
            w.set_uniform(1, 0x4000 + block * 0x100 + warp as u64 * 0x40)
        });
        let mut sim = Simulator::new(tiny_cfg());
        sim.set_trace_level(TraceLevel::Full);
        sim.set_self_profiling(true);
        let run = sim.run_kernel(&spec).unwrap();

        let trace = sim.trace();
        // Each layer contributed events: issue stage, request lifetimes,
        // store buffer, and the mesh.
        for kind in ["issue_verdict", "req_issue", "req_fill", "store_record", "mesh_send"] {
            assert!(trace.count(kind) > 0, "no {kind} events recorded");
        }
        // The loads completed requests with a measured end-to-end latency.
        let completed: Vec<_> = trace.completed().collect();
        assert!(!completed.is_empty(), "no request lifetimes closed");
        assert!(completed.iter().all(|r| r.total_latency() > 0));
        // Self-profiling attributed wall time to every cycle of the run.
        assert_eq!(trace.profile().cycles(), run.cycles);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let mut b = ProgramBuilder::new("quiet");
        b.ld_global(Reg(2), Reg(1), 0);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 1, 1)
            .with_init(|w, _, _, _| w.set_uniform(1, 0x3000));
        let mut sim = Simulator::new(tiny_cfg());
        sim.run_kernel(&spec).unwrap();
        assert_eq!(sim.trace().counts().iter().sum::<u64>(), 0);
        assert_eq!(sim.trace().events().count(), 0);
    }

    #[test]
    fn profiling_off_records_nothing() {
        let mut b = ProgramBuilder::new("p");
        b.ldi(Reg(1), 1);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 1, 1);
        let mut sim = Simulator::new(tiny_cfg());
        sim.set_profiling(false);
        let run = sim.run_kernel(&spec).unwrap();
        assert_eq!(run.breakdown.total_cycles(), 0);
        assert!(run.cycles > 0, "timing still simulated");
    }

    #[test]
    fn deny_gate_refuses_a_broken_kernel() {
        let mut b = ProgramBuilder::new("bad");
        b.st_global(Reg(1), Reg(2), 0); // r1/r2 never initialized
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 1, 1);
        let mut sim = Simulator::new(tiny_cfg());
        let err = sim.run_kernel(&spec).unwrap_err();
        let SimError::Analysis { kernel, errors, report } = err else {
            panic!("expected an analysis refusal");
        };
        assert_eq!(kernel, "bad");
        assert!(errors >= 2, "r1 and r2 are both uninitialized");
        assert_eq!(report.error_count(), errors);
        assert_eq!(sim.last_analysis().unwrap(), report.as_ref());
        assert_eq!(sim.cycle(), 0, "no cycle was simulated");
    }

    #[test]
    fn warn_gate_runs_but_keeps_the_report() {
        let mut b = ProgramBuilder::new("warned");
        b.st_global(Operand::Imm(7), Reg(1), 0); // r1 uninitialized (zero)
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 1, 1);
        let mut sim = Simulator::new(tiny_cfg().with_analysis_gate(AnalysisGate::Warn));
        sim.run_kernel(&spec).unwrap();
        let report = sim.last_analysis().unwrap();
        assert!(report.error_count() > 0, "{}", report.render());
    }

    #[test]
    fn analyze_launch_sees_initializer_registers() {
        let mut b = ProgramBuilder::new("init");
        b.st_global(Reg(1), Reg(2), 0);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 2, 1).with_init(|w, block, _, _| {
            w.set_uniform(1, block);
            w.set_uniform(2, 0x1000 + block * 8);
        });
        let report = analyze_launch(&spec, &tiny_cfg());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn blocks_dispatch_round_robin_by_id() {
        use std::sync::{Arc, Mutex};
        let mut b = ProgramBuilder::new("t");
        b.exit();
        let placements: Arc<Mutex<Vec<(u64, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = placements.clone();
        let spec = LaunchSpec::new(b.build().unwrap(), 6, 1).with_init(move |_, block, _, ctx| {
            sink.lock().unwrap().push((block, ctx.sm));
        });
        // Gate off: the pre-flight analyzer probes the init closure with
        // synthetic placements, which would pollute the recording.
        let mut sim = Simulator::new(tiny_cfg().with_analysis_gate(AnalysisGate::Off));
        sim.run_kernel(&spec).unwrap();
        let got = placements.lock().unwrap().clone();
        for (block, sm) in got {
            assert_eq!(sm as u64, block % 2, "block {block} must land on its home SM");
        }
    }

    #[test]
    fn block_slots_are_reused_after_completion() {
        use std::sync::{Arc, Mutex};
        // 1 SM limited to 2 resident blocks: slots 0 and 1 must be recycled
        // across the 6-block grid.
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 3);
        let top = b.here();
        b.subi(Reg(1), Reg(1), 1);
        b.bra_nz(Reg(1), top);
        b.exit();
        let slots: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = slots.clone();
        let spec = LaunchSpec::new(b.build().unwrap(), 6, 1).with_init(move |_, _, _, ctx| {
            sink.lock().unwrap().push(ctx.slot);
        });
        let mut cfg = SystemConfig::paper().with_gpu_cores(1).with_analysis_gate(AnalysisGate::Off);
        cfg.sm.max_blocks = 2;
        let mut sim = Simulator::new(cfg);
        sim.run_kernel(&spec).unwrap();
        let got = slots.lock().unwrap().clone();
        assert_eq!(got.len(), 6);
        assert!(got.iter().all(|&s| s < 2), "only two hardware slots exist: {got:?}");
        assert!(got.contains(&0) && got.contains(&1));
    }

    #[test]
    fn timeline_epochs_partition_the_run() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 20);
        let top = b.here();
        b.subi(Reg(1), Reg(1), 1);
        b.bra_nz(Reg(1), top);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 1, 1);
        let mut sim = Simulator::new(tiny_cfg());
        sim.set_timeline_epoch(16);
        let run = sim.run_kernel(&spec).unwrap();
        assert_eq!(run.timelines.len(), 2, "one series per SM");
        for series in &run.timelines {
            let total: u64 = series.iter().map(|e| e.total_cycles()).sum();
            assert_eq!(total, run.cycles);
        }
    }

    #[test]
    fn warp_profiles_are_returned_per_sm() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 1);
        b.exit();
        let spec = LaunchSpec::new(b.build().unwrap(), 2, 2);
        let mut sim = Simulator::new(tiny_cfg());
        let run = sim.run_kernel(&spec).unwrap();
        assert_eq!(run.warp_profiles.len(), 2);
        let total_instr: u64 = run.warp_profiles.iter().flatten().map(|p| p.instructions).sum();
        assert_eq!(total_instr, run.instructions);
    }

    #[test]
    fn multi_kernel_memory_persistence() {
        let mut store = ProgramBuilder::new("w");
        store.st_global(Operand::Imm(7), Reg(1), 0);
        store.exit();
        let mut load = ProgramBuilder::new("r");
        load.ld_global(Reg(2), Reg(1), 0);
        load.st_global(Reg(2), Reg(1), 8);
        load.exit();
        let mut sim = Simulator::new(tiny_cfg());
        let s1 = LaunchSpec::new(store.build().unwrap(), 1, 1)
            .with_init(|w, _, _, _| w.set_uniform(1, 0x9000));
        let s2 = LaunchSpec::new(load.build().unwrap(), 1, 1)
            .with_init(|w, _, _, _| w.set_uniform(1, 0x9000));
        sim.run_kernel(&s1).unwrap();
        sim.run_kernel(&s2).unwrap();
        assert_eq!(sim.gmem().read_word(0x9008), 7);
    }
}
