//! # gsi-sim — the integrated CPU-GPU system simulator
//!
//! Wires the pieces of the GSI paper's simulated machine (Table 5.1) into a
//! runnable system: 15 GPU SMs ([`gsi_sm::SmCore`]) and one CPU node spread
//! over a 4×4 mesh ([`gsi_noc::Mesh`]), per-core memory units
//! ([`gsi_mem::CoreMemUnit`]), a 16-bank NUCA L2 with main memory
//! ([`gsi_mem::SharedMem`]), and one [`gsi_core::StallCollector`] per SM.
//!
//! The simulator is cycle-driven and fully deterministic: the same kernel
//! and configuration always produce the same cycle counts and stall
//! breakdowns.
//!
//! ```
//! use gsi_sim::{LaunchSpec, Simulator, SystemConfig};
//! use gsi_isa::{ProgramBuilder, Reg};
//!
//! // A kernel that stores its block id and exits.
//! let mut b = ProgramBuilder::new("hello");
//! b.st_global(Reg(1), Reg(2), 0);
//! b.exit();
//! let program = b.build()?;
//!
//! let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
//! let spec = LaunchSpec::new(program, 4, 1).with_init(|w, block, _warp, _ctx| {
//!     w.set_uniform(1, block + 10);        // value
//!     w.set_uniform(2, 0x1000 + block * 8); // address
//! });
//! let run = sim.run_kernel(&spec).expect("kernel completes");
//! assert_eq!(sim.gmem().read_word(0x1008), 11);
//! assert!(run.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod launch;
mod machine;
mod progress;

pub use config::{AnalysisGate, CycleEngine, SystemConfig};
pub use launch::{LaunchCtx, LaunchSpec};
pub use machine::{analyze_launch, analyze_launch_with, KernelRun, SimError, Simulator};
pub use progress::{ProgressReport, SmProgress, TimeoutKind};

pub use gsi_analyze::{
    finding_digest, AnalysisReport, Baseline, Finding, FindingKind, ProtocolClass, Severity,
};
