//! # gsi-chaos — deterministic fault injection for the GSI simulator
//!
//! Timing chaos for a timing model: a seeded [`FaultPlan`] describes which
//! fault kinds are armed and how hard they bite, and per-component
//! [`ChaosEngine`]s roll a splitmix64 stream at well-defined injection
//! points inside the NoC, the DRAM channel, the per-core memory units, and
//! the DMA engine. Because every roll happens at a deterministic point of
//! the (itself deterministic) simulation, a fixed plan seed reproduces the
//! exact same fault sequence — chaotic runs are as replayable as clean ones.
//!
//! The faults are *timing-only*: they delay mesh flits, stretch DRAM bank
//! latency, transiently reject MSHR allocations, pause store-buffer drains,
//! and hold back DMA bursts for a cycle. They never corrupt data or drop a
//! message irrecoverably, so every invariant the simulator enforces — issue
//! cycle conservation, fixed-seed determinism, request-lifetime sums — must
//! survive arbitrary plans. The property suite in `tests/chaos_faults.rs`
//! holds the simulator to that claim.
//!
//! With chaos disabled (the default), every hook is a single predictable
//! branch on a `bool` — the same zero-cost discipline `gsi-trace` uses for
//! its `counters_on()` gates — so chaos-off runs compile and perform like a
//! build that never heard of this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// The kinds of timing fault the chaos engine can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Extra delivery delay on mesh messages; large enough delays reorder
    /// deliveries relative to send order (the in-flight heap orders by
    /// delivery cycle).
    MeshDelay,
    /// Extra service latency on DRAM bank accesses (bank jitter).
    DramJitter,
    /// Transient MSHR allocation rejection: a load that would have found a
    /// free entry is bounced as if the MSHR were full, and replays next
    /// cycle through the normal structural-stall path.
    MshrStall,
    /// Transient store-buffer drain stall: the flush engine skips a cycle,
    /// so flushes and write-through traffic stretch out.
    StoreBufferStall,
    /// Dropped DMA burst: the DMA engine issues nothing this cycle and
    /// retries the same lines on the next one.
    DmaDrop,
}

impl FaultKind {
    /// Every fault kind, in a stable order (also the order of the
    /// per-kind counters in [`ChaosStats`]).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::MeshDelay,
        FaultKind::DramJitter,
        FaultKind::MshrStall,
        FaultKind::StoreBufferStall,
        FaultKind::DmaDrop,
    ];

    /// Stable machine-readable name (used by CLI flags and BENCH JSON).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::MeshDelay => "mesh_delay",
            FaultKind::DramJitter => "dram_jitter",
            FaultKind::MshrStall => "mshr_stall",
            FaultKind::StoreBufferStall => "store_buffer_stall",
            FaultKind::DmaDrop => "dma_drop",
        }
    }

    /// Parse a [`name`](Self::name) back into a kind.
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s)
    }

    fn index(self) -> usize {
        match self {
            FaultKind::MeshDelay => 0,
            FaultKind::DramJitter => 1,
            FaultKind::MshrStall => 2,
            FaultKind::StoreBufferStall => 3,
            FaultKind::DmaDrop => 4,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How hard one fault kind bites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultParams {
    /// Injection probability per opportunity, in per-mille (0 = never,
    /// 1000 = every opportunity).
    pub per_mille: u16,
    /// Maximum extra cycles for the timing kinds (mesh delay, DRAM jitter);
    /// the injected amount is uniform in `1..=max_extra`. Ignored by the
    /// stall/drop kinds, which cost exactly one replayed cycle each.
    pub max_extra: u64,
}

impl FaultParams {
    /// A parameter block that never fires.
    pub const OFF: FaultParams = FaultParams { per_mille: 0, max_extra: 0 };

    /// True if this kind can ever fire.
    pub fn armed(self) -> bool {
        self.per_mille > 0
    }
}

/// A complete, seeded description of the chaos to inject into one run.
///
/// The plan is pure data: construct it, hand it to
/// `Simulator::set_chaos`, and the simulator derives decorrelated
/// per-component [`ChaosEngine`]s from `seed`. The same plan always yields
/// the same fault sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed; per-component engines derive decorrelated streams.
    pub seed: u64,
    /// Mesh delivery delay parameters.
    pub mesh_delay: FaultParams,
    /// DRAM bank jitter parameters.
    pub dram_jitter: FaultParams,
    /// Transient MSHR rejection parameters.
    pub mshr_stall: FaultParams,
    /// Store-buffer drain stall parameters.
    pub store_buffer_stall: FaultParams,
    /// DMA burst drop parameters.
    pub dma_drop: FaultParams,
}

/// Default per-mille probability for [`FaultPlan::all`] /
/// [`FaultPlan::single`]: aggressive enough to fire constantly on real
/// workloads, bounded enough that forward progress is guaranteed.
pub const DEFAULT_PER_MILLE: u16 = 100;

/// Default `max_extra` cycles for the timing kinds. Kept small relative to
/// protocol timeouts so livelock cannot arise from timing faults alone.
pub const DEFAULT_MAX_EXTRA: u64 = 16;

impl FaultPlan {
    /// A plan that injects nothing (the zero-cost default).
    pub const fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            mesh_delay: FaultParams::OFF,
            dram_jitter: FaultParams::OFF,
            mshr_stall: FaultParams::OFF,
            store_buffer_stall: FaultParams::OFF,
            dma_drop: FaultParams::OFF,
        }
    }

    /// Arm every fault kind at the default (bounded) severity.
    pub fn all(seed: u64) -> Self {
        let p = FaultParams { per_mille: DEFAULT_PER_MILLE, max_extra: DEFAULT_MAX_EXTRA };
        FaultPlan {
            seed,
            mesh_delay: p,
            dram_jitter: p,
            mshr_stall: p,
            store_buffer_stall: p,
            dma_drop: p,
        }
    }

    /// Arm exactly one fault kind at the default severity.
    pub fn single(kind: FaultKind, seed: u64) -> Self {
        FaultPlan::disabled()
            .with_seed(seed)
            .with(kind, FaultParams { per_mille: DEFAULT_PER_MILLE, max_extra: DEFAULT_MAX_EXTRA })
    }

    /// Replace the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the parameters for one kind.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, params: FaultParams) -> Self {
        match kind {
            FaultKind::MeshDelay => self.mesh_delay = params,
            FaultKind::DramJitter => self.dram_jitter = params,
            FaultKind::MshrStall => self.mshr_stall = params,
            FaultKind::StoreBufferStall => self.store_buffer_stall = params,
            FaultKind::DmaDrop => self.dma_drop = params,
        }
        self
    }

    /// Parameters for one kind.
    pub fn params(&self, kind: FaultKind) -> FaultParams {
        match kind {
            FaultKind::MeshDelay => self.mesh_delay,
            FaultKind::DramJitter => self.dram_jitter,
            FaultKind::MshrStall => self.mshr_stall,
            FaultKind::StoreBufferStall => self.store_buffer_stall,
            FaultKind::DmaDrop => self.dma_drop,
        }
    }

    /// True if any kind is armed.
    pub fn is_armed(&self) -> bool {
        FaultKind::ALL.into_iter().any(|k| self.params(k).armed())
    }

    /// JSON description (seed plus the armed kinds), for BENCH reports.
    pub fn to_json(&self) -> gsi_json::Value {
        use gsi_json::Value;
        let mut obj = vec![("seed".to_string(), Value::U64(self.seed))];
        for kind in FaultKind::ALL {
            let p = self.params(kind);
            if p.armed() {
                obj.push((
                    kind.name().to_string(),
                    Value::Object(vec![
                        ("per_mille".to_string(), Value::U64(u64::from(p.per_mille))),
                        ("max_extra".to_string(), Value::U64(p.max_extra)),
                    ]),
                ));
            }
        }
        Value::Object(obj)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl gsi_json::ToJson for FaultPlan {
    fn to_json(&self) -> gsi_json::Value {
        FaultPlan::to_json(self)
    }
}

impl gsi_json::FromJson for FaultPlan {
    /// Inverse of [`FaultPlan::to_json`]: kinds absent from the object are
    /// unarmed (the writer omits them).
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        let mut plan = FaultPlan::disabled().with_seed(v.read("seed")?);
        for kind in FaultKind::ALL {
            if let Some(p) = v.get(kind.name()) {
                plan = plan.with(
                    kind,
                    FaultParams {
                        per_mille: p.read("per_mille")?,
                        max_extra: p.read("max_extra")?,
                    },
                );
            }
        }
        Ok(plan)
    }
}

/// Per-kind counts of injected faults (indexed by [`FaultKind::ALL`] order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    injected: [u64; 5],
}

impl ChaosStats {
    /// Faults injected for one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total faults injected across every kind.
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Accumulate another engine's counts (used to aggregate the
    /// per-component engines into one run-level summary).
    pub fn merge(&mut self, other: &ChaosStats) {
        for (a, b) in self.injected.iter_mut().zip(other.injected.iter()) {
            *a += b;
        }
    }

    /// JSON object of per-kind counts plus the total.
    pub fn to_json(&self) -> gsi_json::Value {
        use gsi_json::Value;
        let mut obj: Vec<(String, Value)> = FaultKind::ALL
            .into_iter()
            .map(|k| (k.name().to_string(), Value::U64(self.count(k))))
            .collect();
        obj.push(("total".to_string(), Value::U64(self.total())));
        Value::Object(obj)
    }
}

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A per-component fault roller: one splitmix64 stream plus a copy of the
/// plan's parameters and per-kind injection counters.
///
/// Each simulated component (the mesh, the shared L2/DRAM side, each core's
/// memory unit) owns its own engine so rolls in one component never perturb
/// another's stream — adding a core to the system leaves the mesh's fault
/// sequence untouched. Engines for distinct components are decorrelated by
/// hashing a `stream` index into the master seed.
///
/// The disabled engine (the [`Default`]) answers every hook with a single
/// branch on `enabled` and touches nothing else.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    enabled: bool,
    state: u64,
    plan: FaultPlan,
    stats: ChaosStats,
}

impl ChaosEngine {
    /// The zero-cost no-op engine.
    pub const fn disabled() -> Self {
        ChaosEngine {
            enabled: false,
            state: 0,
            plan: FaultPlan::disabled(),
            stats: ChaosStats { injected: [0; 5] },
        }
    }

    /// Derive the engine for component `stream` of a plan. Distinct streams
    /// get decorrelated splitmix64 sequences; the same `(plan, stream)`
    /// always yields the same sequence.
    pub fn for_component(plan: &FaultPlan, stream: u64) -> Self {
        if !plan.is_armed() {
            return ChaosEngine::disabled();
        }
        // Hash the stream index through one splitmix64 step so streams 0, 1,
        // 2… land far apart in the master sequence.
        let mut s = plan.seed ^ stream.wrapping_mul(SPLITMIX_GAMMA);
        let state = splitmix64(&mut s);
        ChaosEngine { enabled: true, state, plan: *plan, stats: ChaosStats::default() }
    }

    /// True if this engine can inject anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Per-kind injection counts so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Roll `per_mille` on this engine's stream.
    #[inline]
    fn fires(&mut self, params: FaultParams) -> bool {
        params.per_mille > 0 && (splitmix64(&mut self.state) % 1000) < u64::from(params.per_mille)
    }

    /// Uniform extra delay in `1..=max_extra` (0 when `max_extra` is 0).
    #[inline]
    fn extra(&mut self, params: FaultParams) -> u64 {
        if params.max_extra == 0 {
            return 0;
        }
        1 + splitmix64(&mut self.state) % params.max_extra
    }

    /// Serialize the engine's mutable state — the splitmix64 stream
    /// position and the per-kind injection counters — for a simulator
    /// snapshot. The plan itself is not included: the owner re-derives the
    /// engine via [`ChaosEngine::for_component`] from its recorded
    /// [`FaultPlan`] and then applies this state on top, so a restored run
    /// continues the exact fault sequence the snapshotted run would have.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::ToJson;
        gsi_json::Value::Object(vec![
            ("enabled".to_string(), self.enabled.to_json()),
            ("state".to_string(), self.state.to_json()),
            ("injected".to_string(), self.stats.injected.to_json()),
        ])
    }

    /// Restore state captured by [`ChaosEngine::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns a [`gsi_json::JsonError`] on a malformed snapshot or when
    /// the snapshot's enabled flag disagrees with this engine's (the owner
    /// derived it from a different plan than the snapshotted one).
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        let enabled: bool = v.read("enabled")?;
        if enabled != self.enabled {
            return Err(gsi_json::JsonError::new("chaos snapshot does not match the armed plan"));
        }
        self.state = v.read("state")?;
        self.stats.injected = v.read("injected")?;
        Ok(())
    }

    /// Extra delivery delay for a mesh message, or 0.
    #[inline]
    pub fn mesh_extra_delay(&mut self) -> u64 {
        if !self.enabled || !self.fires(self.plan.mesh_delay) {
            return 0;
        }
        self.stats.injected[FaultKind::MeshDelay.index()] += 1;
        self.extra(self.plan.mesh_delay)
    }

    /// Extra service latency for a DRAM access, or 0.
    #[inline]
    pub fn dram_extra_latency(&mut self) -> u64 {
        if !self.enabled || !self.fires(self.plan.dram_jitter) {
            return 0;
        }
        self.stats.injected[FaultKind::DramJitter.index()] += 1;
        self.extra(self.plan.dram_jitter)
    }

    /// Should this MSHR allocation be transiently rejected?
    #[inline]
    pub fn stall_mshr(&mut self) -> bool {
        if !self.enabled || !self.fires(self.plan.mshr_stall) {
            return false;
        }
        self.stats.injected[FaultKind::MshrStall.index()] += 1;
        true
    }

    /// Should the store-buffer flush engine skip this cycle?
    #[inline]
    pub fn stall_store_buffer(&mut self) -> bool {
        if !self.enabled || !self.fires(self.plan.store_buffer_stall) {
            return false;
        }
        self.stats.injected[FaultKind::StoreBufferStall.index()] += 1;
        true
    }

    /// Should this cycle's DMA burst be dropped (and retried next cycle)?
    #[inline]
    pub fn drop_dma_burst(&mut self) -> bool {
        if !self.enabled || !self.fires(self.plan.dma_drop) {
            return false;
        }
        self.stats.injected[FaultKind::DmaDrop.index()] += 1;
        true
    }
}

impl Default for ChaosEngine {
    fn default() -> Self {
        ChaosEngine::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_engine_injects_nothing() {
        let mut e = ChaosEngine::disabled();
        for _ in 0..1000 {
            assert_eq!(e.mesh_extra_delay(), 0);
            assert_eq!(e.dram_extra_latency(), 0);
            assert!(!e.stall_mshr());
            assert!(!e.stall_store_buffer());
            assert!(!e.drop_dma_burst());
        }
        assert_eq!(e.stats().total(), 0);
    }

    #[test]
    fn unarmed_plan_yields_disabled_engines() {
        let e = ChaosEngine::for_component(&FaultPlan::disabled().with_seed(42), 0);
        assert!(!e.is_enabled());
    }

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let plan = FaultPlan::all(0xDEADBEEF);
        let mut a = ChaosEngine::for_component(&plan, 3);
        let mut b = ChaosEngine::for_component(&plan, 3);
        for _ in 0..10_000 {
            assert_eq!(a.mesh_extra_delay(), b.mesh_extra_delay());
            assert_eq!(a.stall_mshr(), b.stall_mshr());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn distinct_streams_are_decorrelated() {
        let plan = FaultPlan::all(7);
        let mut a = ChaosEngine::for_component(&plan, 0);
        let mut b = ChaosEngine::for_component(&plan, 1);
        let seq_a: Vec<u64> = (0..200).map(|_| a.mesh_extra_delay()).collect();
        let seq_b: Vec<u64> = (0..200).map(|_| b.mesh_extra_delay()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn armed_kinds_fire_within_bounds() {
        let plan = FaultPlan::all(99);
        let mut e = ChaosEngine::for_component(&plan, 0);
        let mut fired = 0u64;
        for _ in 0..10_000 {
            let d = e.mesh_extra_delay();
            assert!(d <= DEFAULT_MAX_EXTRA);
            if d > 0 {
                fired += 1;
            }
        }
        // 10% per-mille over 10k opportunities: expect roughly 1000 hits.
        assert!(fired > 500 && fired < 1500, "fired {fired} of 10000");
        assert_eq!(e.stats().count(FaultKind::MeshDelay), fired);
    }

    #[test]
    fn single_arms_exactly_one_kind() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan::single(kind, 5);
            for other in FaultKind::ALL {
                assert_eq!(plan.params(other).armed(), kind == other);
            }
            assert!(plan.is_armed());
        }
    }

    #[test]
    fn per_mille_1000_always_fires() {
        let plan = FaultPlan::disabled()
            .with(FaultKind::MshrStall, FaultParams { per_mille: 1000, max_extra: 0 });
        let mut e = ChaosEngine::for_component(&plan, 0);
        for _ in 0..100 {
            assert!(e.stall_mshr());
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nonsense"), None);
    }

    #[test]
    fn stats_merge_accumulates() {
        let plan = FaultPlan::all(1);
        let mut a = ChaosEngine::for_component(&plan, 0);
        let mut b = ChaosEngine::for_component(&plan, 1);
        for _ in 0..1000 {
            a.mesh_extra_delay();
            b.dram_extra_latency();
        }
        let mut total = ChaosStats::default();
        total.merge(a.stats());
        total.merge(b.stats());
        assert_eq!(total.total(), a.stats().total() + b.stats().total());
    }

    #[test]
    fn engine_snapshot_resumes_the_stream() {
        let plan = FaultPlan::all(0xABCD);
        let mut live = ChaosEngine::for_component(&plan, 2);
        for _ in 0..137 {
            live.mesh_extra_delay();
        }
        let snap = live.snapshot();
        let mut resumed = ChaosEngine::for_component(&plan, 2);
        resumed.restore(&snap).expect("restore");
        assert_eq!(resumed.stats(), live.stats());
        for _ in 0..500 {
            assert_eq!(resumed.mesh_extra_delay(), live.mesh_extra_delay());
            assert_eq!(resumed.stall_mshr(), live.stall_mshr());
        }
        // Restoring onto an engine derived from a different plan is an
        // error, not silent divergence.
        let mut wrong = ChaosEngine::disabled();
        assert!(wrong.restore(&snap).is_err());
    }

    #[test]
    fn plan_round_trips_through_json() {
        use gsi_json::{FromJson, ToJson};
        for plan in [
            FaultPlan::disabled(),
            FaultPlan::all(7),
            FaultPlan::single(FaultKind::DmaDrop, 99)
                .with(FaultKind::MeshDelay, FaultParams { per_mille: 3, max_extra: 2 }),
        ] {
            let v = ToJson::to_json(&plan);
            assert_eq!(FaultPlan::from_json(&v).expect("parse"), plan);
        }
    }

    #[test]
    fn plan_json_lists_armed_kinds() {
        let plan = FaultPlan::single(FaultKind::DramJitter, 11);
        let rendered = plan.to_json().to_string();
        assert!(rendered.contains("dram_jitter"));
        assert!(!rendered.contains("mesh_delay"));
    }
}
