//! Functional semantics of ALU operations.

use crate::instr::AluOp;

/// Evaluate an ALU operation on two 64-bit values.
///
/// All arithmetic wraps. Division by zero yields 0 and remainder by zero
/// yields the dividend, so programs can never fault.
///
/// ```
/// use gsi_isa::{eval_alu, AluOp};
/// assert_eq!(eval_alu(AluOp::Add, u64::MAX, 1), 0);
/// assert_eq!(eval_alu(AluOp::SltU, 3, 5), 1);
/// assert_eq!(eval_alu(AluOp::DivU, 7, 0), 0);
/// ```
pub fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::DivU => a.checked_div(b).unwrap_or(0),
        AluOp::RemU => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32),
        AluOp::Shr => a.wrapping_shr(b as u32),
        AluOp::MinU => a.min(b),
        AluOp::MaxU => a.max(b),
        AluOp::SltU => u64::from(a < b),
        AluOp::Seq => u64::from(a == b),
        AluOp::Sne => u64::from(a != b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(eval_alu(AluOp::Add, u64::MAX, 2), 1);
        assert_eq!(eval_alu(AluOp::Sub, 0, 1), u64::MAX);
        assert_eq!(eval_alu(AluOp::Mul, 1 << 63, 2), 0);
    }

    #[test]
    fn division_by_zero_is_total() {
        assert_eq!(eval_alu(AluOp::DivU, 10, 0), 0);
        assert_eq!(eval_alu(AluOp::RemU, 10, 0), 10);
        assert_eq!(eval_alu(AluOp::DivU, 10, 3), 3);
        assert_eq!(eval_alu(AluOp::RemU, 10, 3), 1);
    }

    #[test]
    fn comparisons_produce_bool_ints() {
        assert_eq!(eval_alu(AluOp::SltU, 1, 2), 1);
        assert_eq!(eval_alu(AluOp::SltU, 2, 1), 0);
        assert_eq!(eval_alu(AluOp::Seq, 4, 4), 1);
        assert_eq!(eval_alu(AluOp::Sne, 4, 4), 0);
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(eval_alu(AluOp::Shl, 1, 64), 1); // 64 % 64 == 0
        assert_eq!(eval_alu(AluOp::Shr, 8, 3), 1);
    }

    #[test]
    fn min_max() {
        assert_eq!(eval_alu(AluOp::MinU, 3, 9), 3);
        assert_eq!(eval_alu(AluOp::MaxU, 3, 9), 9);
    }

    #[test]
    fn bitwise() {
        assert_eq!(eval_alu(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(eval_alu(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(eval_alu(AluOp::Xor, 0b1100, 0b1010), 0b0110);
    }
}
