//! Executable programs (kernels).

use crate::instr::Instr;
use std::fmt;

/// A finished kernel: a named sequence of instructions with resolved branch
/// targets. Build one with [`ProgramBuilder`](crate::ProgramBuilder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
}

impl Program {
    pub(crate) fn from_parts(name: String, instrs: Vec<Instr>) -> Self {
        Program { name, instrs }
    }

    /// Construct a program directly from instructions, bypassing the
    /// builder's label machinery. Exposed for tests and tools only: branch
    /// targets are taken as-is and not validated.
    #[doc(hidden)]
    pub fn from_parts_for_tests(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        Program { name: name.into(), instrs }
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// All instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }
}

gsi_json::json_struct!(Program { name, instrs });

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".kernel {}", self.name)?;
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:4}:  {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Operand, Reg};

    fn tiny() -> Program {
        Program::from_parts(
            "t".into(),
            vec![
                Instr::Alu { op: AluOp::Add, dst: Reg(0), a: Reg(0).into(), b: Operand::Imm(1) },
                Instr::Exit,
            ],
        )
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = tiny();
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_some());
        assert!(p.fetch(2).is_none());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn display_lists_instructions() {
        let text = tiny().to_string();
        assert!(text.contains(".kernel t"));
        assert!(text.contains("exit"));
    }
}
