//! A host-side reference interpreter for single-warp programs.
//!
//! The interpreter defines the *architectural* semantics of the ISA —
//! lockstep lanes, divergence via a reconvergence stack, immediate memory —
//! with no timing model at all. It exists for differential testing: any
//! program run through the cycle-level simulator must leave memory and
//! registers in exactly the state the interpreter computes (see the
//! `prop_differential` integration tests).
//!
//! Scope: one warp. Barriers are no-ops (a single warp trivially satisfies
//! them), atomics execute immediately on the leader lane, and DMA/stash
//! instructions perform their functional copies eagerly.

use crate::instr::{AtomOp, BranchCond, Instr, Operand};
use crate::program::Program;
use crate::{eval_alu, NUM_REGS, WARP_LANES};
use std::collections::HashMap;

/// Why interpretation stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The step limit was reached (probably a non-terminating program).
    StepLimit,
    /// `exit` executed while the reconvergence stack was non-empty.
    ExitInDivergence,
    /// The program counter left the program without an `exit`.
    PcOutOfRange(usize),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::StepLimit => write!(f, "step limit reached"),
            InterpError::ExitInDivergence => write!(f, "exit inside a divergent region"),
            InterpError::PcOutOfRange(pc) => write!(f, "pc {pc} out of range"),
        }
    }
}

impl std::error::Error for InterpError {}

#[derive(Debug, Clone, Copy)]
struct SimtEntry {
    rpc: usize,
    mask: u32,
    pc: usize,
}

/// The interpreter state for one warp.
#[derive(Debug, Clone)]
pub struct Interp<'p> {
    program: &'p Program,
    /// Per-lane register files.
    pub regs: Vec<[u64; NUM_REGS]>,
    /// Global memory (sparse words).
    pub gmem: HashMap<u64, u64>,
    /// Local (scratchpad) memory words, by word-aligned byte offset.
    pub lmem: HashMap<u64, u64>,
    /// Stash mappings: `(local, global, bytes)` ranges; local accesses that
    /// hit a mapping read/write global memory through it.
    pub stash_maps: Vec<(u64, u64, u64)>,
    pc: usize,
    active_mask: u32,
    stack: Vec<SimtEntry>,
    /// Instructions executed.
    pub executed: u64,
}

impl<'p> Interp<'p> {
    /// A fresh warp at pc 0 with zeroed registers and empty memories.
    pub fn new(program: &'p Program) -> Self {
        Interp {
            program,
            regs: vec![[0; NUM_REGS]; WARP_LANES],
            gmem: HashMap::new(),
            lmem: HashMap::new(),
            stash_maps: Vec::new(),
            pc: 0,
            active_mask: u32::MAX,
            stack: Vec::new(),
            executed: 0,
        }
    }

    /// Read a global word (zero if unwritten).
    pub fn read_gmem(&self, addr: u64) -> u64 {
        self.gmem.get(&(addr & !7)).copied().unwrap_or(0)
    }

    /// Write a global word.
    pub fn write_gmem(&mut self, addr: u64, value: u64) {
        self.gmem.insert(addr & !7, value);
    }

    fn local_read(&self, addr: u64) -> u64 {
        let addr = addr & !7;
        for &(l, g, bytes) in &self.stash_maps {
            if addr >= l && addr < l + bytes {
                return self.gmem.get(&(g + (addr - l))).copied().unwrap_or(0);
            }
        }
        self.lmem.get(&addr).copied().unwrap_or(0)
    }

    fn local_write(&mut self, addr: u64, value: u64) {
        let addr = addr & !7;
        for &(l, g, bytes) in &self.stash_maps.clone() {
            if addr >= l && addr < l + bytes {
                self.gmem.insert(g + (addr - l), value);
                return;
            }
        }
        self.lmem.insert(addr, value);
    }

    fn op_val(&self, lane: usize, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.regs[lane][r.0 as usize],
            Operand::Imm(v) => v as u64,
        }
    }

    fn leader(&self) -> usize {
        self.active_mask.trailing_zeros() as usize
    }

    fn lane_active(&self, lane: usize) -> bool {
        self.active_mask & (1 << lane) != 0
    }

    /// Run to `exit` or error, executing at most `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn run(&mut self, max_steps: u64) -> Result<(), InterpError> {
        while self.executed < max_steps {
            // Reconvergence check, exactly as the SM does it.
            while let Some(&top) = self.stack.last() {
                if self.pc != top.rpc {
                    break;
                }
                self.stack.pop();
                self.active_mask = top.mask;
                self.pc = top.pc;
            }
            let instr = *self.program.fetch(self.pc).ok_or(InterpError::PcOutOfRange(self.pc))?;
            self.executed += 1;
            match instr {
                Instr::Alu { op, dst, a, b } => {
                    for lane in 0..WARP_LANES {
                        if self.lane_active(lane) {
                            let v = eval_alu(op, self.op_val(lane, a), self.op_val(lane, b));
                            self.regs[lane][dst.0 as usize] = v;
                        }
                    }
                    self.pc += 1;
                }
                Instr::Ldi { dst, imm } => {
                    for lane in 0..WARP_LANES {
                        if self.lane_active(lane) {
                            self.regs[lane][dst.0 as usize] = imm;
                        }
                    }
                    self.pc += 1;
                }
                Instr::Sel { dst, cond, a, b } => {
                    for lane in 0..WARP_LANES {
                        if self.lane_active(lane) {
                            let c = self.regs[lane][cond.0 as usize];
                            let v =
                                if c != 0 { self.op_val(lane, a) } else { self.op_val(lane, b) };
                            self.regs[lane][dst.0 as usize] = v;
                        }
                    }
                    self.pc += 1;
                }
                Instr::LdGlobal { dst, addr, offset } => {
                    for lane in 0..WARP_LANES {
                        if self.lane_active(lane) {
                            let a = self.regs[lane][addr.0 as usize].wrapping_add(offset as u64);
                            self.regs[lane][dst.0 as usize] = self.read_gmem(a);
                        }
                    }
                    self.pc += 1;
                }
                Instr::StGlobal { src, addr, offset } => {
                    for lane in 0..WARP_LANES {
                        if self.lane_active(lane) {
                            let a = self.regs[lane][addr.0 as usize].wrapping_add(offset as u64);
                            let v = self.op_val(lane, src);
                            self.write_gmem(a, v);
                        }
                    }
                    self.pc += 1;
                }
                Instr::LdLocal { dst, addr, offset } => {
                    for lane in 0..WARP_LANES {
                        if self.lane_active(lane) {
                            let a = self.regs[lane][addr.0 as usize].wrapping_add(offset as u64);
                            self.regs[lane][dst.0 as usize] = self.local_read(a);
                        }
                    }
                    self.pc += 1;
                }
                Instr::StLocal { src, addr, offset } => {
                    for lane in 0..WARP_LANES {
                        if self.lane_active(lane) {
                            let a = self.regs[lane][addr.0 as usize].wrapping_add(offset as u64);
                            let v = self.op_val(lane, src);
                            self.local_write(a, v);
                        }
                    }
                    self.pc += 1;
                }
                Instr::Atom { op, dst, addr, a, b, .. } => {
                    let leader = self.leader();
                    let address = self.regs[leader][addr.0 as usize];
                    let av = self.op_val(leader, a);
                    let bv = self.op_val(leader, b);
                    let old = self.read_gmem(address);
                    let (new, ret) = match op {
                        AtomOp::Cas => {
                            if old == av {
                                (bv, old)
                            } else {
                                (old, old)
                            }
                        }
                        AtomOp::Exch => (av, old),
                        AtomOp::Add => (old.wrapping_add(av), old),
                        AtomOp::Load => (old, old),
                        AtomOp::Store => (av, old),
                    };
                    self.write_gmem(address, new);
                    if op != AtomOp::Store {
                        for lane in 0..WARP_LANES {
                            if self.lane_active(lane) {
                                self.regs[lane][dst.0 as usize] = ret;
                            }
                        }
                    }
                    self.pc += 1;
                }
                Instr::Bar => {
                    // A single warp satisfies the barrier immediately.
                    self.pc += 1;
                }
                Instr::Bra { cond, target } => {
                    let leader = self.leader();
                    let taken = match cond {
                        BranchCond::Zero(r) => self.regs[leader][r.0 as usize] == 0,
                        BranchCond::NonZero(r) => self.regs[leader][r.0 as usize] != 0,
                    };
                    self.pc = if taken { target } else { self.pc + 1 };
                }
                Instr::BraDiv { cond, target, join } => {
                    let cur = self.active_mask;
                    let mut taken = 0u32;
                    for lane in 0..WARP_LANES {
                        if cur & (1 << lane) == 0 {
                            continue;
                        }
                        let t = match cond {
                            BranchCond::Zero(r) => self.regs[lane][r.0 as usize] == 0,
                            BranchCond::NonZero(r) => self.regs[lane][r.0 as usize] != 0,
                        };
                        if t {
                            taken |= 1 << lane;
                        }
                    }
                    let not_taken = cur & !taken;
                    if taken == 0 {
                        self.pc += 1;
                    } else if not_taken == 0 {
                        self.pc = target;
                    } else {
                        self.stack.push(SimtEntry { rpc: join, mask: cur, pc: join });
                        self.stack.push(SimtEntry { rpc: join, mask: taken, pc: target });
                        self.active_mask = not_taken;
                        self.pc += 1;
                    }
                }
                Instr::Jmp { target } => self.pc = target,
                Instr::DmaLoad { global, local, bytes } => {
                    let leader = self.leader();
                    let g = self.regs[leader][global.0 as usize];
                    let l = self.regs[leader][local.0 as usize];
                    for off in (0..bytes).step_by(8) {
                        let v = self.read_gmem(g + off);
                        self.lmem.insert((l + off) & !7, v);
                    }
                    self.pc += 1;
                }
                Instr::DmaStore { global, local, bytes } => {
                    let leader = self.leader();
                    let g = self.regs[leader][global.0 as usize];
                    let l = self.regs[leader][local.0 as usize];
                    for off in (0..bytes).step_by(8) {
                        let v = self.lmem.get(&((l + off) & !7)).copied().unwrap_or(0);
                        self.write_gmem(g + off, v);
                    }
                    self.pc += 1;
                }
                Instr::StashMap { global, local, bytes, .. } => {
                    let leader = self.leader();
                    let g = self.regs[leader][global.0 as usize];
                    let l = self.regs[leader][local.0 as usize];
                    self.stash_maps.push((l, g, bytes));
                    self.pc += 1;
                }
                Instr::Exit => {
                    if !self.stack.is_empty() {
                        return Err(InterpError::ExitInDivergence);
                    }
                    return Ok(());
                }
                Instr::Nop => self.pc += 1,
            }
        }
        Err(InterpError::StepLimit)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{MemSem, Reg};

    #[test]
    fn straight_line_and_loop() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 5);
        b.ldi(Reg(2), 0);
        let top = b.here();
        b.add(Reg(2), Reg(2), Reg(1));
        b.subi(Reg(1), Reg(1), 1);
        b.bra_nz(Reg(1), top);
        b.exit();
        let p = b.build().unwrap();
        let mut i = Interp::new(&p);
        i.run(1000).unwrap();
        assert_eq!(i.regs[0][2], 5 + 4 + 3 + 2 + 1);
        assert_eq!(i.regs[31][2], 15, "all lanes in lockstep");
    }

    #[test]
    fn divergence_per_lane() {
        let mut b = ProgramBuilder::new("t");
        let then_l = b.label();
        let join_l = b.label();
        b.and(Reg(2), Reg(0), Operand::Imm(1));
        b.bra_div_nz(Reg(2), then_l, join_l);
        b.ldi(Reg(3), 100);
        b.jmp_to(join_l);
        b.bind(then_l);
        b.ldi(Reg(3), 200);
        b.bind(join_l);
        b.exit();
        let p = b.build().unwrap();
        let mut i = Interp::new(&p);
        for lane in 0..WARP_LANES {
            i.regs[lane][0] = lane as u64;
        }
        i.run(1000).unwrap();
        for lane in 0..WARP_LANES {
            let want = if lane % 2 == 1 { 200 } else { 100 };
            assert_eq!(i.regs[lane][3], want, "lane {lane}");
        }
    }

    #[test]
    fn memory_and_atomics() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 0x100);
        b.st_global(Operand::Imm(7), Reg(1), 0);
        b.ld_global(Reg(2), Reg(1), 0);
        b.atom_add(Reg(3), Reg(1), Operand::Imm(3), MemSem::Relaxed);
        b.exit();
        let p = b.build().unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.regs[0][2], 7);
        assert_eq!(i.regs[0][3], 7, "fetch-add returns the old value");
        assert_eq!(i.read_gmem(0x100), 10);
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let mut b = ProgramBuilder::new("t");
        let top = b.here();
        b.jmp_to(top);
        b.exit();
        let p = b.build().unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(50), Err(InterpError::StepLimit));
    }

    #[test]
    fn stash_mapping_reads_through_to_global() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 0x1000); // global base
        b.ldi(Reg(2), 0); // local base
        b.stash_map(Reg(1), Reg(2), 64, true);
        b.ld_local(Reg(3), Reg(2), 8);
        b.st_local(Operand::Imm(9), Reg(2), 16);
        b.exit();
        let p = b.build().unwrap();
        let mut i = Interp::new(&p);
        i.write_gmem(0x1008, 42);
        i.run(100).unwrap();
        assert_eq!(i.regs[0][3], 42);
        assert_eq!(i.read_gmem(0x1010), 9, "stash stores are coherent");
    }

    #[test]
    fn dma_round_trip() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 0x2000);
        b.ldi(Reg(2), 0);
        b.dma_load(Reg(1), Reg(2), 64);
        b.ld_local(Reg(3), Reg(2), 0);
        b.addi(Reg(3), Reg(3), 1);
        b.st_local(Reg(3), Reg(2), 0);
        b.ldi(Reg(4), 0x3000);
        b.dma_store(Reg(4), Reg(2), 64);
        b.exit();
        let p = b.build().unwrap();
        let mut i = Interp::new(&p);
        i.write_gmem(0x2000, 10);
        i.run(100).unwrap();
        assert_eq!(i.read_gmem(0x3000), 11);
    }
}
