//! # gsi-isa — a virtual SIMT instruction set
//!
//! The GSI paper drives its simulator with CUDA binaries running on a
//! GPGPU-Sim SM model. This crate provides the equivalent substrate for the
//! Rust reproduction: a small register-based SIMT ISA in which the paper's
//! workloads (unbalanced tree search and the implicit microbenchmark) are
//! written, together with an assembler-style [`ProgramBuilder`] and the
//! functional semantics of every operation.
//!
//! ## Execution model
//!
//! A kernel is a [`Program`] executed by every thread of a grid. Threads are
//! grouped into warps of [`WARP_LANES`] lanes that execute in lockstep; each
//! lane has its own register file of [`NUM_REGS`] 64-bit registers.
//! Branches are *warp-uniform*: the condition is evaluated on lane 0 (the
//! idiom the paper's workloads use — "the lock is only accessed by one
//! thread per warp"). Per-lane data divergence is expressed with the
//! [`Instr::Sel`] predicated select instead of divergent control flow.
//!
//! Memory is byte-addressed; loads and stores move 64-bit words. The
//! `*Global` instructions access the coherent global address space through
//! the L1/L2 hierarchy; the `*Local` instructions access the SM's
//! scratchpad or stash space. Atomics execute at the shared L2 cache and
//! may carry acquire/release semantics ([`MemSem`]), which is how the
//! workloads build locks and flags under the data-race-free consistency
//! model the paper assumes.
//!
//! ```
//! use gsi_isa::{AluOp, Operand, ProgramBuilder, Reg};
//!
//! // r2 = r0 + r1; loop decrementing r2 until zero.
//! let mut b = ProgramBuilder::new("demo");
//! let top = b.label();
//! b.alu(AluOp::Add, Reg(2), Reg(0), Reg(1));
//! b.bind(top);
//! b.alu(AluOp::Sub, Reg(2), Reg(2), Operand::Imm(1));
//! b.bra_nz(Reg(2), top);
//! b.exit();
//! let program = b.build().unwrap();
//! assert_eq!(program.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod builder;
mod exec;
mod instr;
pub mod interp;
mod program;

pub use builder::{BuildError, Label, ProgramBuilder};
pub use exec::eval_alu;
pub use instr::{AluOp, AtomOp, BranchCond, ExecUnit, Flow, Instr, MemSem, Operand, Reg};
pub use program::Program;

/// Number of lanes (threads) in a warp.
pub const WARP_LANES: usize = 32;

/// Number of general-purpose 64-bit registers per lane.
pub const NUM_REGS: usize = 32;

/// Bytes per data word moved by loads and stores.
pub const WORD_BYTES: u64 = 8;
