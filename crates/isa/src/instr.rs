//! Instruction definitions.

use std::fmt;

/// A general-purpose register index (`r0` .. `r31`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An ALU operand: a register or a 64-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read the per-lane register.
    Reg(Reg),
    /// A sign-extended immediate (stored as the raw bit pattern).
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Arithmetic/logic operations. All arithmetic wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (executes on the SFU pipeline).
    Mul,
    /// Unsigned division; division by zero yields 0 (executes on the SFU).
    DivU,
    /// Unsigned remainder; remainder by zero yields the dividend (SFU).
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Unsigned minimum.
    MinU,
    /// Unsigned maximum.
    MaxU,
    /// `1` if `a < b` (unsigned) else `0`.
    SltU,
    /// `1` if `a == b` else `0`.
    Seq,
    /// `1` if `a != b` else `0`.
    Sne,
}

impl AluOp {
    /// Which execution pipeline the operation uses, which determines its
    /// latency and the structural-hazard unit it occupies.
    pub fn unit(self) -> ExecUnit {
        match self {
            AluOp::Mul | AluOp::DivU | AluOp::RemU => ExecUnit::Sfu,
            _ => ExecUnit::Alu,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::DivU => "divu",
            AluOp::RemU => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::MinU => "minu",
            AluOp::MaxU => "maxu",
            AluOp::SltU => "sltu",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
        };
        f.write_str(s)
    }
}

/// Compute pipelines of the SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecUnit {
    /// The main integer/FP ALU pipeline (short latency, wide).
    Alu,
    /// The special-function unit (long latency, narrow).
    Sfu,
}

/// Memory-ordering semantics carried by an atomic operation.
///
/// Under the data-race-free consistency model the paper uses, acquires
/// self-invalidate the L1 and releases flush the store buffer before
/// completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSem {
    /// No ordering.
    Relaxed,
    /// Acquire: subsequent reads see writes ordered before the paired
    /// release.
    Acquire,
    /// Release: prior writes are made visible before this operation.
    Release,
    /// Both acquire and release.
    AcqRel,
}

impl MemSem {
    /// True for `Acquire` and `AcqRel`.
    pub fn is_acquire(self) -> bool {
        matches!(self, MemSem::Acquire | MemSem::AcqRel)
    }

    /// True for `Release` and `AcqRel`.
    pub fn is_release(self) -> bool {
        matches!(self, MemSem::Release | MemSem::AcqRel)
    }
}

/// Read-modify-write operations, all serviced at the shared L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// Compare-and-swap: `dst = old; if old == a { mem = b }`.
    Cas,
    /// Exchange: `dst = old; mem = a`.
    Exch,
    /// Fetch-and-add: `dst = old; mem = old + a`.
    Add,
    /// Atomic read: `dst = old` (used for acquiring loads of flags).
    Load,
    /// Atomic write: `mem = a` (used for releasing stores of flags).
    Store,
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomOp::Cas => "cas",
            AtomOp::Exch => "exch",
            AtomOp::Add => "add",
            AtomOp::Load => "ld",
            AtomOp::Store => "st",
        };
        f.write_str(s)
    }
}

/// Branch conditions, evaluated on lane 0 (warp-uniform branching).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken when lane 0's register is zero.
    Zero(Reg),
    /// Taken when lane 0's register is nonzero.
    NonZero(Reg),
}

/// A fixed-capacity list of source registers. No instruction reads more
/// than three registers, so the issue stage's per-cycle hazard scan never
/// needs a heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceRegs {
    regs: [Reg; 3],
    len: u8,
}

impl SourceRegs {
    /// An empty list.
    pub fn new() -> Self {
        SourceRegs { regs: [Reg(0); 3], len: 0 }
    }

    fn push(&mut self, r: Reg) {
        self.regs[self.len as usize] = r;
        self.len += 1;
    }

    /// The collected registers.
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }
}

impl Default for SourceRegs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for SourceRegs {
    type Target = [Reg];

    fn deref(&self) -> &[Reg] {
        self.as_slice()
    }
}

/// One instruction of the virtual ISA.
///
/// Branch targets are instruction indices into the owning
/// [`Program`](crate::Program); the [`ProgramBuilder`](crate::ProgramBuilder)
/// resolves symbolic labels to indices at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `dst = op(a, b)` per lane.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Load immediate: `dst = imm` per lane.
    Ldi {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Predicated select: `dst = if cond != 0 { a } else { b }` per lane.
    Sel {
        /// Destination register.
        dst: Reg,
        /// Per-lane condition register.
        cond: Reg,
        /// Value when the condition is nonzero.
        a: Operand,
        /// Value when the condition is zero.
        b: Operand,
    },
    /// Load a 64-bit word from global memory: `dst = mem[addr + offset]`
    /// per lane.
    LdGlobal {
        /// Destination register.
        dst: Reg,
        /// Per-lane base address register.
        addr: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Store a 64-bit word to global memory: `mem[addr + offset] = src`
    /// per lane.
    StGlobal {
        /// Value to store.
        src: Operand,
        /// Per-lane base address register.
        addr: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Load from the SM-local scratchpad/stash space.
    LdLocal {
        /// Destination register.
        dst: Reg,
        /// Per-lane local address register.
        addr: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Store to the SM-local scratchpad/stash space.
    StLocal {
        /// Value to store.
        src: Operand,
        /// Per-lane local address register.
        addr: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Atomic read-modify-write at the shared L2.
    ///
    /// Executes on lane 0 only (the one-thread-per-warp idiom used for
    /// locks); the result is broadcast to `dst` in every lane.
    Atom {
        /// Operation.
        op: AtomOp,
        /// Destination register receiving the old value.
        dst: Reg,
        /// Address register (lane 0).
        addr: Reg,
        /// First operand (compare value for CAS, store value otherwise).
        a: Operand,
        /// Second operand (swap value for CAS; unused otherwise).
        b: Operand,
        /// Ordering semantics.
        sem: MemSem,
    },
    /// Thread-block barrier.
    Bar,
    /// Conditional branch (warp-uniform, lane-0 condition).
    Bra {
        /// Condition.
        cond: BranchCond,
        /// Target instruction index.
        target: usize,
    },
    /// Divergent conditional branch: the condition is evaluated *per lane*.
    /// Lanes where it holds jump to `target`; the rest fall through. Both
    /// sides reconverge at `join` (the immediate post-dominator), managed
    /// by the SM's SIMT reconvergence stack.
    BraDiv {
        /// Per-lane condition.
        cond: BranchCond,
        /// Taken-side target instruction index.
        target: usize,
        /// Reconvergence point both sides meet at.
        join: usize,
    },
    /// Unconditional jump.
    Jmp {
        /// Target instruction index.
        target: usize,
    },
    /// Start a DMA transfer from global memory into the scratchpad
    /// (scratchpad+DMA configuration). Non-blocking; scratchpad accesses to
    /// the mapped range stall until the transfer completes.
    DmaLoad {
        /// Register holding the global base address (lane 0).
        global: Reg,
        /// Register holding the scratchpad byte offset of the destination
        /// (lane 0).
        local: Reg,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// Start a DMA transfer from the scratchpad back to global memory.
    /// The kernel does not complete until the transfer drains.
    DmaStore {
        /// Register holding the global base address (lane 0).
        global: Reg,
        /// Register holding the scratchpad byte offset of the source
        /// (lane 0).
        local: Reg,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// Install a stash mapping from a local range to a global range (stash
    /// configuration). Accesses load on demand; dirty data is lazily written
    /// back at kernel end when `writeback` is set.
    StashMap {
        /// Register holding the global base address (lane 0).
        global: Reg,
        /// Register holding the stash byte offset the range maps to
        /// (lane 0).
        local: Reg,
        /// Mapped size in bytes.
        bytes: u64,
        /// Whether dirty stash data is written back at kernel end.
        writeback: bool,
    },
    /// Terminate the warp.
    Exit,
    /// No operation.
    Nop,
}

impl Instr {
    /// True for instructions that go to the load/store unit.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::LdGlobal { .. }
                | Instr::StGlobal { .. }
                | Instr::LdLocal { .. }
                | Instr::StLocal { .. }
                | Instr::Atom { .. }
                | Instr::DmaLoad { .. }
                | Instr::DmaStore { .. }
        )
    }

    /// The registers this instruction reads, without heap allocation.
    ///
    /// This is what the issue stage's hazard scan uses every cycle; see
    /// [`sources`](Self::sources) for the allocating convenience form.
    pub fn source_regs(&self) -> SourceRegs {
        let mut v = SourceRegs::new();
        fn op(v: &mut SourceRegs, o: &Operand) {
            if let Operand::Reg(r) = o {
                v.push(*r);
            }
        }
        match self {
            Instr::Alu { a, b, .. } => {
                op(&mut v, a);
                op(&mut v, b);
            }
            Instr::Sel { cond, a, b, .. } => {
                v.push(*cond);
                op(&mut v, a);
                op(&mut v, b);
            }
            Instr::LdGlobal { addr, .. } | Instr::LdLocal { addr, .. } => v.push(*addr),
            Instr::StGlobal { src, addr, .. } | Instr::StLocal { src, addr, .. } => {
                op(&mut v, src);
                v.push(*addr);
            }
            Instr::Atom { addr, a, b, .. } => {
                v.push(*addr);
                op(&mut v, a);
                op(&mut v, b);
            }
            Instr::Bra { cond, .. } | Instr::BraDiv { cond, .. } => match cond {
                BranchCond::Zero(r) | BranchCond::NonZero(r) => v.push(*r),
            },
            Instr::DmaLoad { global, local, .. }
            | Instr::DmaStore { global, local, .. }
            | Instr::StashMap { global, local, .. } => {
                v.push(*global);
                v.push(*local);
            }
            Instr::Ldi { .. } | Instr::Bar | Instr::Jmp { .. } | Instr::Exit | Instr::Nop => {}
        }
        v
    }

    /// The registers this instruction reads.
    pub fn sources(&self) -> Vec<Reg> {
        self.source_regs().as_slice().to_vec()
    }

    /// The register this instruction writes, if any.
    pub fn dest(&self) -> Option<Reg> {
        match self {
            Instr::Alu { dst, .. }
            | Instr::Ldi { dst, .. }
            | Instr::Sel { dst, .. }
            | Instr::LdGlobal { dst, .. }
            | Instr::LdLocal { dst, .. }
            | Instr::Atom { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The register this instruction *architecturally defines*, if any.
    ///
    /// Unlike [`dest`](Self::dest) (which names the scoreboard slot the
    /// pipeline tracks), an atomic store broadcasts no old value, so its
    /// `dst` field never receives data. Dataflow analyses must use this
    /// accessor or they will treat `atom.st`'s dummy destination as a
    /// definition.
    pub fn writes_dest(&self) -> Option<Reg> {
        match self {
            Instr::Atom { op: AtomOp::Store, .. } => None,
            _ => self.dest(),
        }
    }

    /// Where control can go after this instruction — the successor shape a
    /// control-flow graph is built from.
    pub fn flow(&self) -> Flow {
        match self {
            Instr::Jmp { target } => Flow::Jump(*target),
            Instr::Bra { target, .. } => Flow::Branch(*target),
            Instr::BraDiv { target, join, .. } => Flow::Diverge { target: *target, join: *join },
            Instr::Exit => Flow::Stop,
            _ => Flow::Next,
        }
    }
}

/// The control-flow successor shape of one instruction (see
/// [`Instr::flow`]). Targets are absolute instruction indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Falls through to the next instruction.
    Next,
    /// Unconditionally jumps to the carried instruction index.
    Jump(usize),
    /// Warp-uniform conditional: taken target, or fallthrough.
    Branch(usize),
    /// Per-lane divergent branch: taken target, fallthrough, and the
    /// explicit reconvergence point both sides meet at.
    Diverge {
        /// Taken-side target.
        target: usize,
        /// Reconvergence instruction index.
        join: usize,
    },
    /// The warp terminates; no successor.
    Stop,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instr::Ldi { dst, imm } => write!(f, "ldi {dst}, {imm}"),
            Instr::Sel { dst, cond, a, b } => write!(f, "sel {dst}, {cond}, {a}, {b}"),
            Instr::LdGlobal { dst, addr, offset } => write!(f, "ld.g {dst}, [{addr}+{offset}]"),
            Instr::StGlobal { src, addr, offset } => write!(f, "st.g [{addr}+{offset}], {src}"),
            Instr::LdLocal { dst, addr, offset } => write!(f, "ld.l {dst}, [{addr}+{offset}]"),
            Instr::StLocal { src, addr, offset } => write!(f, "st.l [{addr}+{offset}], {src}"),
            Instr::Atom { op, dst, addr, a, b, sem } => {
                write!(f, "atom.{op}.{sem:?} {dst}, [{addr}], {a}, {b}")
            }
            Instr::Bar => write!(f, "bar"),
            Instr::Bra { cond, target } => match cond {
                BranchCond::Zero(r) => write!(f, "braz {r}, @{target}"),
                BranchCond::NonZero(r) => write!(f, "branz {r}, @{target}"),
            },
            Instr::BraDiv { cond, target, join } => match cond {
                BranchCond::Zero(r) => write!(f, "braz.div {r}, @{target}, join @{join}"),
                BranchCond::NonZero(r) => write!(f, "branz.div {r}, @{target}, join @{join}"),
            },
            Instr::Jmp { target } => write!(f, "jmp @{target}"),
            Instr::DmaLoad { global, local, bytes } => {
                write!(f, "dma.ld [{local}], [{global}], {bytes}")
            }
            Instr::DmaStore { global, local, bytes } => {
                write!(f, "dma.st [{global}], [{local}], {bytes}")
            }
            Instr::StashMap { global, local, bytes, writeback } => {
                write!(f, "stash.map [{local}], [{global}], {bytes}, wb={writeback}")
            }
            Instr::Exit => write!(f, "exit"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

// ---------------------------------------------------------------------
// JSON serialization. Unit variants encode as the variant name string,
// payload variants as a single-key object: {"Variant": payload}.
// ---------------------------------------------------------------------

use gsi_json::{obj, FromJson, JsonError, ToJson, Value};

gsi_json::json_unit_enum!(AluOp {
    Add,
    Sub,
    Mul,
    DivU,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    MinU,
    MaxU,
    SltU,
    Seq,
    Sne,
});
gsi_json::json_unit_enum!(ExecUnit { Alu, Sfu });
gsi_json::json_unit_enum!(MemSem { Relaxed, Acquire, Release, AcqRel });
gsi_json::json_unit_enum!(AtomOp { Cas, Exch, Add, Load, Store });

impl ToJson for Reg {
    fn to_json(&self) -> Value {
        Value::U64(u64::from(self.0))
    }
}

impl FromJson for Reg {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        u8::from_json(v).map(Reg)
    }
}

impl ToJson for Operand {
    fn to_json(&self) -> Value {
        match self {
            Operand::Reg(r) => obj! { "Reg" => r },
            Operand::Imm(v) => obj! { "Imm" => v },
        }
    }
}

impl FromJson for Operand {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if let Some(r) = v.get("Reg") {
            return Reg::from_json(r).map(Operand::Reg);
        }
        if let Some(imm) = v.get("Imm") {
            return i64::from_json(imm).map(Operand::Imm);
        }
        Err(JsonError::expected("Reg or Imm operand", v))
    }
}

impl ToJson for BranchCond {
    fn to_json(&self) -> Value {
        match self {
            BranchCond::Zero(r) => obj! { "Zero" => r },
            BranchCond::NonZero(r) => obj! { "NonZero" => r },
        }
    }
}

impl FromJson for BranchCond {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if let Some(r) = v.get("Zero") {
            return Reg::from_json(r).map(BranchCond::Zero);
        }
        if let Some(r) = v.get("NonZero") {
            return Reg::from_json(r).map(BranchCond::NonZero);
        }
        Err(JsonError::expected("Zero or NonZero condition", v))
    }
}

impl ToJson for Instr {
    fn to_json(&self) -> Value {
        match self {
            Instr::Alu { op, dst, a, b } => {
                obj! { "Alu" => obj! { "op" => op, "dst" => dst, "a" => a, "b" => b } }
            }
            Instr::Ldi { dst, imm } => obj! { "Ldi" => obj! { "dst" => dst, "imm" => imm } },
            Instr::Sel { dst, cond, a, b } => {
                obj! { "Sel" => obj! { "dst" => dst, "cond" => cond, "a" => a, "b" => b } }
            }
            Instr::LdGlobal { dst, addr, offset } => {
                obj! { "LdGlobal" => obj! { "dst" => dst, "addr" => addr, "offset" => offset } }
            }
            Instr::StGlobal { src, addr, offset } => {
                obj! { "StGlobal" => obj! { "src" => src, "addr" => addr, "offset" => offset } }
            }
            Instr::LdLocal { dst, addr, offset } => {
                obj! { "LdLocal" => obj! { "dst" => dst, "addr" => addr, "offset" => offset } }
            }
            Instr::StLocal { src, addr, offset } => {
                obj! { "StLocal" => obj! { "src" => src, "addr" => addr, "offset" => offset } }
            }
            Instr::Atom { op, dst, addr, a, b, sem } => obj! {
                "Atom" => obj! {
                    "op" => op, "dst" => dst, "addr" => addr, "a" => a, "b" => b, "sem" => sem
                }
            },
            Instr::Bar => Value::Str("Bar".to_string()),
            Instr::Bra { cond, target } => {
                obj! { "Bra" => obj! { "cond" => cond, "target" => target } }
            }
            Instr::BraDiv { cond, target, join } => {
                obj! { "BraDiv" => obj! { "cond" => cond, "target" => target, "join" => join } }
            }
            Instr::Jmp { target } => obj! { "Jmp" => obj! { "target" => target } },
            Instr::DmaLoad { global, local, bytes } => {
                obj! { "DmaLoad" => obj! { "global" => global, "local" => local, "bytes" => bytes } }
            }
            Instr::DmaStore { global, local, bytes } => {
                obj! { "DmaStore" => obj! { "global" => global, "local" => local, "bytes" => bytes } }
            }
            Instr::StashMap { global, local, bytes, writeback } => obj! {
                "StashMap" => obj! {
                    "global" => global, "local" => local, "bytes" => bytes,
                    "writeback" => writeback
                }
            },
            Instr::Exit => Value::Str("Exit".to_string()),
            Instr::Nop => Value::Str("Nop".to_string()),
        }
    }
}

impl FromJson for Instr {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if let Some(name) = v.as_str() {
            return match name {
                "Bar" => Ok(Instr::Bar),
                "Exit" => Ok(Instr::Exit),
                "Nop" => Ok(Instr::Nop),
                other => Err(JsonError::new(format!("unknown Instr variant `{other}`"))),
            };
        }
        let fields = v.as_object().ok_or_else(|| JsonError::expected("Instr", v))?;
        let [(name, body)] = fields else {
            return Err(JsonError::expected("single-variant Instr object", v));
        };
        fn field<T: FromJson>(body: &Value, name: &str) -> Result<T, JsonError> {
            T::from_json(body.get(name).ok_or_else(|| JsonError::missing(name))?)
        }
        match name.as_str() {
            "Alu" => Ok(Instr::Alu {
                op: field(body, "op")?,
                dst: field(body, "dst")?,
                a: field(body, "a")?,
                b: field(body, "b")?,
            }),
            "Ldi" => Ok(Instr::Ldi { dst: field(body, "dst")?, imm: field(body, "imm")? }),
            "Sel" => Ok(Instr::Sel {
                dst: field(body, "dst")?,
                cond: field(body, "cond")?,
                a: field(body, "a")?,
                b: field(body, "b")?,
            }),
            "LdGlobal" => Ok(Instr::LdGlobal {
                dst: field(body, "dst")?,
                addr: field(body, "addr")?,
                offset: field(body, "offset")?,
            }),
            "StGlobal" => Ok(Instr::StGlobal {
                src: field(body, "src")?,
                addr: field(body, "addr")?,
                offset: field(body, "offset")?,
            }),
            "LdLocal" => Ok(Instr::LdLocal {
                dst: field(body, "dst")?,
                addr: field(body, "addr")?,
                offset: field(body, "offset")?,
            }),
            "StLocal" => Ok(Instr::StLocal {
                src: field(body, "src")?,
                addr: field(body, "addr")?,
                offset: field(body, "offset")?,
            }),
            "Atom" => Ok(Instr::Atom {
                op: field(body, "op")?,
                dst: field(body, "dst")?,
                addr: field(body, "addr")?,
                a: field(body, "a")?,
                b: field(body, "b")?,
                sem: field(body, "sem")?,
            }),
            "Bra" => Ok(Instr::Bra { cond: field(body, "cond")?, target: field(body, "target")? }),
            "BraDiv" => Ok(Instr::BraDiv {
                cond: field(body, "cond")?,
                target: field(body, "target")?,
                join: field(body, "join")?,
            }),
            "Jmp" => Ok(Instr::Jmp { target: field(body, "target")? }),
            "DmaLoad" => Ok(Instr::DmaLoad {
                global: field(body, "global")?,
                local: field(body, "local")?,
                bytes: field(body, "bytes")?,
            }),
            "DmaStore" => Ok(Instr::DmaStore {
                global: field(body, "global")?,
                local: field(body, "local")?,
                bytes: field(body, "bytes")?,
            }),
            "StashMap" => Ok(Instr::StashMap {
                global: field(body, "global")?,
                local: field(body, "local")?,
                bytes: field(body, "bytes")?,
                writeback: field(body, "writeback")?,
            }),
            other => Err(JsonError::new(format!("unknown Instr variant `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_and_dest() {
        let i = Instr::Alu { op: AluOp::Add, dst: Reg(3), a: Reg(1).into(), b: Operand::Imm(4) };
        assert_eq!(i.sources(), vec![Reg(1)]);
        assert_eq!(i.dest(), Some(Reg(3)));

        let st = Instr::StGlobal { src: Reg(2).into(), addr: Reg(5), offset: 8 };
        assert_eq!(st.sources(), vec![Reg(2), Reg(5)]);
        assert_eq!(st.dest(), None);

        let bra = Instr::Bra { cond: BranchCond::NonZero(Reg(7)), target: 0 };
        assert_eq!(bra.sources(), vec![Reg(7)]);
    }

    #[test]
    fn memory_instruction_predicate() {
        assert!(Instr::LdGlobal { dst: Reg(0), addr: Reg(1), offset: 0 }.is_memory());
        assert!(Instr::DmaLoad { global: Reg(0), local: Reg(1), bytes: 64 }.is_memory());
        assert!(!Instr::Bar.is_memory());
        assert!(!Instr::Nop.is_memory());
    }

    #[test]
    fn sfu_ops_route_to_sfu() {
        assert_eq!(AluOp::Mul.unit(), ExecUnit::Sfu);
        assert_eq!(AluOp::DivU.unit(), ExecUnit::Sfu);
        assert_eq!(AluOp::Add.unit(), ExecUnit::Alu);
        assert_eq!(AluOp::Xor.unit(), ExecUnit::Alu);
    }

    #[test]
    fn mem_sem_predicates() {
        assert!(MemSem::Acquire.is_acquire());
        assert!(!MemSem::Acquire.is_release());
        assert!(MemSem::AcqRel.is_acquire());
        assert!(MemSem::AcqRel.is_release());
        assert!(!MemSem::Relaxed.is_acquire());
        assert!(MemSem::Release.is_release());
    }

    #[test]
    fn display_roundtrips_basic_shapes() {
        let i = Instr::LdGlobal { dst: Reg(1), addr: Reg(2), offset: 16 };
        assert_eq!(i.to_string(), "ld.g r1, [r2+16]");
        assert_eq!(Instr::Bar.to_string(), "bar");
    }
}
