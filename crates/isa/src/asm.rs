//! A parser for the textual assembly the disassembler prints, so kernels
//! round-trip through text: `Program -> Display -> parse == Program`.
//!
//! The format is exactly what [`Program`]'s `Display` emits:
//!
//! ```text
//! .kernel spin
//!    0:  ldi r1, 4096
//!    1:  atom.cas.Acquire r2, [r1], 0, 1
//!    2:  branz r2, @1
//!    3:  exit
//! ```
//!
//! Branch targets are absolute instruction indices (`@N`), matching the
//! resolved representation; the [`ProgramBuilder`](crate::ProgramBuilder)
//! remains the way to write kernels with symbolic labels.

use crate::instr::{AluOp, AtomOp, BranchCond, Instr, MemSem, Operand, Reg};
use crate::program::Program;
use std::fmt;

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

/// Render `program` in the indexed disassembly format `parse_program`
/// accepts: a `.kernel` header followed by one `  PC:  instr` line per
/// instruction. Every line carries its absolute instruction index so
/// diagnostics can cite exact positions.
pub fn disassemble(program: &Program) -> String {
    let mut out = format!(".kernel {}\n", program.name());
    for (pc, i) in program.instrs().iter().enumerate() {
        out.push_str(&format!("{pc:4}:  {i}\n"));
    }
    out
}

/// A `file:line`-style source location for instruction `pc` of `program`,
/// e.g. `uts-centralized.gsi:17`. The "file" is the kernel name with a
/// `.gsi` suffix; the line is the absolute instruction index, matching the
/// indices [`disassemble`] prints.
pub fn location(program: &Program, pc: usize) -> String {
    format!("{}.gsi:{pc}", program.name())
}

/// Render a diagnostic snippet around instruction `pc`: up to `context`
/// instructions on each side in disassembly format, with the subject line
/// marked by `->`.
///
/// ```text
///      3:  ld.l r7, [r6+0]
/// ->   4:  st.l [r6+0], r7
///      5:  bar
/// ```
pub fn snippet(program: &Program, pc: usize, context: usize) -> String {
    let instrs = program.instrs();
    let first = pc.saturating_sub(context);
    let last = (pc + context).min(instrs.len().saturating_sub(1));
    let mut out = String::new();
    for (p, i) in instrs.iter().enumerate().take(last + 1).skip(first) {
        let marker = if p == pc { "->" } else { "  " };
        out.push_str(&format!("{marker} {p:4}:  {i}\n"));
    }
    out
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    let Some(n) = tok.strip_prefix('r') else {
        return err(line, format!("expected register, got `{tok}`"));
    };
    match n.parse::<u8>() {
        Ok(v) => Ok(Reg(v)),
        Err(_) => err(line, format!("bad register `{tok}`")),
    }
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) {
        Ok(Operand::Reg(parse_reg(tok, line)?))
    } else {
        match tok.parse::<i64>() {
            Ok(v) => Ok(Operand::Imm(v)),
            Err(_) => err(line, format!("expected operand, got `{tok}`")),
        }
    }
}

/// Parse `[rN+OFF]` into `(reg, offset)`.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i64), ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    let inner = tok.strip_prefix('[').and_then(|t| t.strip_suffix(']')).ok_or_else(|| {
        ParseError { line, message: format!("expected memory operand `[rN+OFF]`, got `{tok}`") }
    })?;
    // The offset is signed and printed as `+{offset}` with offset possibly
    // negative, i.e. `r2+-8`.
    match inner.split_once('+') {
        Some((r, off)) => {
            let reg = parse_reg(r, line)?;
            let offset = off
                .parse::<i64>()
                .map_err(|_| ParseError { line, message: format!("bad offset `{off}`") })?;
            Ok((reg, offset))
        }
        None => Ok((parse_reg(inner, line)?, 0)),
    }
}

fn parse_target(tok: &str, line: usize) -> Result<usize, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    let Some(n) = tok.strip_prefix('@') else {
        return err(line, format!("expected branch target `@N`, got `{tok}`"));
    };
    n.parse::<usize>().map_err(|_| ParseError { line, message: format!("bad target `{tok}`") })
}

fn parse_alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "divu" => AluOp::DivU,
        "remu" => AluOp::RemU,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "minu" => AluOp::MinU,
        "maxu" => AluOp::MaxU,
        "sltu" => AluOp::SltU,
        "seq" => AluOp::Seq,
        "sne" => AluOp::Sne,
        _ => return None,
    })
}

fn parse_instr(text: &str, line: usize) -> Result<Instr, ParseError> {
    let mut parts = text.split_whitespace();
    let Some(mnemonic) = parts.next() else {
        return err(line, "empty instruction");
    };
    let rest: Vec<&str> = parts.collect();
    let arg = |i: usize| -> Result<&str, ParseError> {
        rest.get(i).copied().ok_or_else(|| ParseError {
            line,
            message: format!("`{mnemonic}` is missing operand {i}"),
        })
    };

    if let Some(op) = parse_alu_op(mnemonic) {
        return Ok(Instr::Alu {
            op,
            dst: parse_reg(arg(0)?, line)?,
            a: parse_operand(arg(1)?, line)?,
            b: parse_operand(arg(2)?, line)?,
        });
    }
    match mnemonic {
        "ldi" => Ok(Instr::Ldi {
            dst: parse_reg(arg(0)?, line)?,
            imm: {
                let tok = arg(1)?.trim_end_matches(',');
                tok.parse::<u64>()
                    .map_err(|_| ParseError { line, message: format!("bad immediate `{tok}`") })?
            },
        }),
        "sel" => Ok(Instr::Sel {
            dst: parse_reg(arg(0)?, line)?,
            cond: parse_reg(arg(1)?, line)?,
            a: parse_operand(arg(2)?, line)?,
            b: parse_operand(arg(3)?, line)?,
        }),
        "ld.g" | "ld.l" => {
            let dst = parse_reg(arg(0)?, line)?;
            let (addr, offset) = parse_mem(arg(1)?, line)?;
            Ok(if mnemonic == "ld.g" {
                Instr::LdGlobal { dst, addr, offset }
            } else {
                Instr::LdLocal { dst, addr, offset }
            })
        }
        "st.g" | "st.l" => {
            let (addr, offset) = parse_mem(arg(0)?, line)?;
            let src = parse_operand(arg(1)?, line)?;
            Ok(if mnemonic == "st.g" {
                Instr::StGlobal { src, addr, offset }
            } else {
                Instr::StLocal { src, addr, offset }
            })
        }
        m if m.starts_with("atom.") => {
            let mut dots = m.splitn(3, '.');
            dots.next(); // "atom"
            let op = match dots.next() {
                Some("cas") => AtomOp::Cas,
                Some("exch") => AtomOp::Exch,
                Some("add") => AtomOp::Add,
                Some("ld") => AtomOp::Load,
                Some("st") => AtomOp::Store,
                other => return err(line, format!("bad atomic op `{other:?}`")),
            };
            let sem = match dots.next() {
                Some("Relaxed") => MemSem::Relaxed,
                Some("Acquire") => MemSem::Acquire,
                Some("Release") => MemSem::Release,
                Some("AcqRel") => MemSem::AcqRel,
                other => return err(line, format!("bad memory semantics `{other:?}`")),
            };
            let dst = parse_reg(arg(0)?, line)?;
            let (addr, _) = parse_mem(arg(1)?, line)?;
            let a = parse_operand(arg(2)?, line)?;
            let b = parse_operand(arg(3)?, line)?;
            Ok(Instr::Atom { op, dst, addr, a, b, sem })
        }
        "bar" => Ok(Instr::Bar),
        "braz" | "branz" => {
            let reg = parse_reg(arg(0)?, line)?;
            let target = parse_target(arg(1)?, line)?;
            let cond =
                if mnemonic == "braz" { BranchCond::Zero(reg) } else { BranchCond::NonZero(reg) };
            Ok(Instr::Bra { cond, target })
        }
        "braz.div" | "branz.div" => {
            // `branz.div r1, @T, join @J`
            let reg = parse_reg(arg(0)?, line)?;
            let target = parse_target(arg(1)?, line)?;
            if arg(2)? != "join" {
                return err(line, "expected `join @N`");
            }
            let join = parse_target(arg(3)?, line)?;
            let cond = if mnemonic == "braz.div" {
                BranchCond::Zero(reg)
            } else {
                BranchCond::NonZero(reg)
            };
            Ok(Instr::BraDiv { cond, target, join })
        }
        "jmp" => Ok(Instr::Jmp { target: parse_target(arg(0)?, line)? }),
        "dma.ld" | "dma.st" => {
            // ld: `dma.ld [local], [global], bytes`; st: `dma.st [global], [local], bytes`
            let (first, _) = parse_mem(arg(0)?, line)?;
            let (second, _) = parse_mem(arg(1)?, line)?;
            let bytes = arg(2)?
                .trim_end_matches(',')
                .parse::<u64>()
                .map_err(|_| ParseError { line, message: "bad byte count".into() })?;
            Ok(if mnemonic == "dma.ld" {
                Instr::DmaLoad { global: second, local: first, bytes }
            } else {
                Instr::DmaStore { global: first, local: second, bytes }
            })
        }
        "stash.map" => {
            // `stash.map [local], [global], bytes, wb=bool`
            let (local, _) = parse_mem(arg(0)?, line)?;
            let (global, _) = parse_mem(arg(1)?, line)?;
            let bytes = arg(2)?
                .trim_end_matches(',')
                .parse::<u64>()
                .map_err(|_| ParseError { line, message: "bad byte count".into() })?;
            let wb = match arg(3)? {
                "wb=true" => true,
                "wb=false" => false,
                other => return err(line, format!("expected wb=..., got `{other}`")),
            };
            Ok(Instr::StashMap { global, local, bytes, writeback: wb })
        }
        "exit" => Ok(Instr::Exit),
        "nop" => Ok(Instr::Nop),
        other => err(line, format!("unknown mnemonic `{other}`")),
    }
}

/// Parse a program in the disassembly format.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line on malformed input,
/// missing headers, or branch targets outside the program.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut name = None;
    let mut instrs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        if let Some(n) = line.strip_prefix(".kernel") {
            if name.is_some() {
                return err(line_no, "duplicate .kernel header");
            }
            name = Some(n.trim().to_string());
            continue;
        }
        if name.is_none() {
            return err(line_no, "missing .kernel header");
        }
        // Strip an optional `N:` position prefix.
        let body = match line.split_once(':') {
            Some((pos, rest)) if pos.trim().chars().all(|c| c.is_ascii_digit()) => rest.trim(),
            _ => line,
        };
        instrs.push(parse_instr(body, line_no)?);
    }
    let Some(name) = name else {
        return err(0, "empty input");
    };
    if instrs.is_empty() {
        return err(0, "program has no instructions");
    }
    // Validate branch targets.
    for (pc, i) in instrs.iter().enumerate() {
        let check = |t: usize| -> Result<(), ParseError> {
            if t < instrs.len() {
                Ok(())
            } else {
                err(pc + 1, format!("branch target @{t} out of range"))
            }
        };
        match i {
            Instr::Bra { target, .. } | Instr::Jmp { target } => check(*target)?,
            Instr::BraDiv { target, join, .. } => {
                check(*target)?;
                check(*join)?;
            }
            _ => {}
        }
    }
    Ok(Program::from_parts(name, instrs))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::builder::ProgramBuilder;

    /// A program exercising every instruction variant.
    fn kitchen_sink() -> Program {
        let mut b = ProgramBuilder::new("sink");
        b.add(Reg(1), Reg(2), Operand::Imm(-5));
        b.mul(Reg(3), Reg(1), Reg(1));
        b.ldi(Reg(4), u64::MAX);
        b.sel(Reg(5), Reg(4), Reg(1), Operand::Imm(0));
        b.ld_global(Reg(6), Reg(1), 16);
        b.st_global(Reg(6), Reg(1), -8);
        b.ld_local(Reg(7), Reg(1), 0);
        b.st_local(Operand::Imm(3), Reg(1), 24);
        b.atom_cas(Reg(8), Reg(1), Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
        b.atom_store(Reg(1), Operand::Imm(0), MemSem::Release);
        b.bar();
        let l = b.label();
        b.bra_z(Reg(8), l);
        let l2 = b.label();
        let j = b.label();
        b.bra_div_nz(Reg(5), l2, j);
        b.nop();
        b.jmp_to(j);
        b.bind(l2);
        b.nop();
        b.bind(j);
        b.bind(l);
        b.dma_load(Reg(1), Reg(2), 128);
        b.dma_store(Reg(1), Reg(2), 128);
        b.stash_map(Reg(1), Reg(2), 256, true);
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn disassembly_round_trips() {
        let p = kitchen_sink();
        let text = p.to_string();
        let q = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(p, q);
    }

    #[test]
    fn indexed_disassembly_round_trips() {
        let p = kitchen_sink();
        let text = disassemble(&p);
        // Every instruction line leads with its absolute index.
        for (n, line) in text.lines().skip(1).enumerate() {
            assert!(line.trim_start().starts_with(&format!("{n}:")), "line {n}: {line:?}");
        }
        let q = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(p, q);
    }

    #[test]
    fn locations_and_snippets_cite_instruction_indices() {
        let p = kitchen_sink();
        assert_eq!(location(&p, 17), "sink.gsi:17");
        let s = snippet(&p, 4, 1);
        assert_eq!(s.lines().count(), 3);
        let marked = s.lines().find(|l| l.starts_with("->")).unwrap();
        assert!(marked.contains(" 4:"), "{s}");
        // The marked line's body is the real instruction at that pc.
        let body = marked.split_once(':').unwrap().1.trim();
        assert_eq!(body, p.fetch(4).unwrap().to_string());
        // Snippets at the program edges clamp instead of panicking.
        let top = snippet(&p, 0, 2);
        assert!(top.starts_with("-> "));
        let end = p.len() - 1;
        let bottom = snippet(&p, end, 2);
        assert!(bottom.trim_end().ends_with(&p.fetch(end).unwrap().to_string()));
    }

    #[test]
    fn hand_written_assembly_parses() {
        let text = "\
            .kernel spin\n\
            # spin until the CAS wins\n\
            ldi r1, 4096\n\
            atom.cas.Acquire r2, [r1], 0, 1\n\
            branz r2, @1\n\
            exit\n";
        let p = parse_program(text).unwrap();
        assert_eq!(p.name(), "spin");
        assert_eq!(p.len(), 4);
        assert!(matches!(p.fetch(1), Some(Instr::Atom { sem: MemSem::Acquire, .. })));
    }

    #[test]
    fn position_prefixes_are_optional_and_ignored() {
        let a = parse_program(".kernel t\n0: nop\n1: exit\n").unwrap();
        let b = parse_program(".kernel t\nnop\nexit\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program(".kernel t\nnop\nfrobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn missing_header_is_an_error() {
        let e = parse_program("nop\n").unwrap_err();
        assert!(e.message.contains(".kernel"));
    }

    #[test]
    fn out_of_range_target_is_an_error() {
        let e = parse_program(".kernel t\njmp @9\nexit\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn parsed_programs_execute() {
        let text = "\
            .kernel addloop\n\
            ldi r1, 3\n\
            ldi r2, 0\n\
            add r2, r2, 10\n\
            sub r1, r1, 1\n\
            branz r1, @2\n\
            exit\n";
        let p = parse_program(text).unwrap();
        let mut i = crate::interp::Interp::new(&p);
        i.run(1000).unwrap();
        assert_eq!(i.regs[0][2], 30);
    }
}
