//! An assembler-style builder for [`Program`]s with symbolic labels.

use crate::instr::{AluOp, AtomOp, BranchCond, Instr, MemSem, Operand, Reg};
use crate::program::Program;
use crate::NUM_REGS;
use std::fmt;

/// A symbolic branch target. Create with [`ProgramBuilder::label`], place
/// with [`ProgramBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors detected by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced by a branch but never bound to a position.
    UnboundLabel(usize),
    /// A label was bound twice.
    RebindLabel(usize),
    /// An instruction names a register outside `r0..r{NUM_REGS-1}`.
    RegOutOfRange {
        /// Index of the offending instruction.
        pc: usize,
        /// The register.
        reg: Reg,
    },
    /// The program has no instructions.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {l} referenced but never bound"),
            BuildError::RebindLabel(l) => write!(f, "label {l} bound twice"),
            BuildError::RegOutOfRange { pc, reg } => {
                write!(f, "instruction {pc} uses out-of-range register {reg}")
            }
            BuildError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally assembles a [`Program`].
///
/// Every emit method returns `&mut Self` for chaining. Labels may be bound
/// before or after the branches that reference them.
///
/// ```
/// use gsi_isa::{ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new("count");
/// let done = b.label();
/// b.ldi(Reg(0), 3);
/// let top = b.here();
/// b.subi(Reg(0), Reg(0), 1);
/// b.bra_z(Reg(0), done);
/// b.jmp_to(top);
/// b.bind(done);
/// b.exit();
/// let p = b.build()?;
/// assert_eq!(p.len(), 5);
/// # Ok::<(), gsi_isa::BuildError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<Instr>,
    /// label id -> bound pc
    bound: Vec<Option<usize>>,
    /// (pc, label) pairs to patch at build time
    fixups: Vec<(usize, Label)>,
    /// (pc, label) pairs patching the `join` slot of divergent branches
    join_fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Start building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder { name: name.into(), ..Default::default() }
    }

    /// Declare a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Bind `label` to the current position (the next emitted instruction).
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (a logic error in the caller).
    pub fn bind(&mut self, label: Label) {
        assert!(self.bound[label.0].is_none(), "label bound twice");
        self.bound[label.0] = Some(self.instrs.len());
    }

    /// Declare a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Current instruction count (the pc of the next instruction).
    pub fn pc(&self) -> usize {
        self.instrs.len()
    }

    /// Emit a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Emit `dst = op(a, b)`.
    pub fn alu(
        &mut self,
        op: AluOp,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Alu { op, dst, a: a.into(), b: b.into() })
    }

    /// Emit `dst = a + b`.
    pub fn add(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Add, dst, a, b)
    }

    /// Emit `dst = a + imm`.
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Add, dst, a, Operand::Imm(imm))
    }

    /// Emit `dst = a - b`.
    pub fn sub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sub, dst, a, b)
    }

    /// Emit `dst = a - imm`.
    pub fn subi(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Sub, dst, a, Operand::Imm(imm))
    }

    /// Emit `dst = a * b` (SFU pipeline).
    pub fn mul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Mul, dst, a, b)
    }

    /// Emit `dst = a & b`.
    pub fn and(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::And, dst, a, b)
    }

    /// Emit `dst = a | b`.
    pub fn or(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Or, dst, a, b)
    }

    /// Emit `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Xor, dst, a, b)
    }

    /// Emit `dst = a << b`.
    pub fn shl(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shl, dst, a, b)
    }

    /// Emit `dst = a >> b`.
    pub fn shr(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shr, dst, a, b)
    }

    /// Emit `dst = (a < b) as u64` (unsigned).
    pub fn sltu(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::SltU, dst, a, b)
    }

    /// Emit `dst = (a == b) as u64`.
    pub fn seq(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Seq, dst, a, b)
    }

    /// Emit `dst = (a != b) as u64`.
    pub fn sne(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sne, dst, a, b)
    }

    /// Emit `dst = a % b` (SFU pipeline).
    pub fn remu(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::RemU, dst, a, b)
    }

    /// Emit `dst = a / b` (SFU pipeline).
    pub fn divu(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::DivU, dst, a, b)
    }

    /// Emit `dst = imm`.
    pub fn ldi(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Ldi { dst, imm })
    }

    /// Emit `dst = src` (a register-to-register move).
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.alu(AluOp::Or, dst, src, Operand::Imm(0))
    }

    /// Emit `dst = if cond != 0 { a } else { b }` (per lane).
    pub fn sel(
        &mut self,
        dst: Reg,
        cond: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Sel { dst, cond, a: a.into(), b: b.into() })
    }

    /// Emit a global load.
    pub fn ld_global(&mut self, dst: Reg, addr: Reg, offset: i64) -> &mut Self {
        self.push(Instr::LdGlobal { dst, addr, offset })
    }

    /// Emit a global store.
    pub fn st_global(&mut self, src: impl Into<Operand>, addr: Reg, offset: i64) -> &mut Self {
        self.push(Instr::StGlobal { src: src.into(), addr, offset })
    }

    /// Emit a scratchpad/stash load.
    pub fn ld_local(&mut self, dst: Reg, addr: Reg, offset: i64) -> &mut Self {
        self.push(Instr::LdLocal { dst, addr, offset })
    }

    /// Emit a scratchpad/stash store.
    pub fn st_local(&mut self, src: impl Into<Operand>, addr: Reg, offset: i64) -> &mut Self {
        self.push(Instr::StLocal { src: src.into(), addr, offset })
    }

    /// Emit a compare-and-swap at `[addr]`: `dst = old`, and if
    /// `old == cmp`, memory becomes `swap`.
    pub fn atom_cas(
        &mut self,
        dst: Reg,
        addr: Reg,
        cmp: impl Into<Operand>,
        swap: impl Into<Operand>,
        sem: MemSem,
    ) -> &mut Self {
        self.push(Instr::Atom { op: AtomOp::Cas, dst, addr, a: cmp.into(), b: swap.into(), sem })
    }

    /// Emit an atomic exchange.
    pub fn atom_exch(
        &mut self,
        dst: Reg,
        addr: Reg,
        val: impl Into<Operand>,
        sem: MemSem,
    ) -> &mut Self {
        self.push(Instr::Atom {
            op: AtomOp::Exch,
            dst,
            addr,
            a: val.into(),
            b: Operand::Imm(0),
            sem,
        })
    }

    /// Emit an atomic fetch-and-add.
    pub fn atom_add(
        &mut self,
        dst: Reg,
        addr: Reg,
        val: impl Into<Operand>,
        sem: MemSem,
    ) -> &mut Self {
        self.push(Instr::Atom {
            op: AtomOp::Add,
            dst,
            addr,
            a: val.into(),
            b: Operand::Imm(0),
            sem,
        })
    }

    /// Emit an atomic load (serviced at L2, can carry acquire semantics).
    pub fn atom_load(&mut self, dst: Reg, addr: Reg, sem: MemSem) -> &mut Self {
        self.push(Instr::Atom {
            op: AtomOp::Load,
            dst,
            addr,
            a: Operand::Imm(0),
            b: Operand::Imm(0),
            sem,
        })
    }

    /// Emit an atomic store (serviced at L2, can carry release semantics).
    pub fn atom_store(&mut self, addr: Reg, val: impl Into<Operand>, sem: MemSem) -> &mut Self {
        self.push(Instr::Atom {
            op: AtomOp::Store,
            dst: Reg(0),
            addr,
            a: val.into(),
            b: Operand::Imm(0),
            sem,
        })
    }

    /// Emit a thread-block barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.push(Instr::Bar)
    }

    /// Emit a branch taken when lane 0's `reg` is zero.
    pub fn bra_z(&mut self, reg: Reg, target: Label) -> &mut Self {
        let pc = self.instrs.len();
        self.fixups.push((pc, target));
        self.push(Instr::Bra { cond: BranchCond::Zero(reg), target: usize::MAX })
    }

    /// Emit a branch taken when lane 0's `reg` is nonzero.
    pub fn bra_nz(&mut self, reg: Reg, target: Label) -> &mut Self {
        let pc = self.instrs.len();
        self.fixups.push((pc, target));
        self.push(Instr::Bra { cond: BranchCond::NonZero(reg), target: usize::MAX })
    }

    /// Emit a *divergent* branch: lanes whose `reg` is nonzero jump to
    /// `target`, the rest fall through; both sides reconverge at `join`.
    ///
    /// The canonical structured layout is:
    ///
    /// ```text
    ///   branz.div cond, THEN, JOIN
    ///   <else block>
    ///   jmp JOIN
    /// THEN:
    ///   <then block>
    /// JOIN:
    /// ```
    pub fn bra_div_nz(&mut self, reg: Reg, target: Label, join: Label) -> &mut Self {
        let pc = self.instrs.len();
        self.fixups.push((pc, target));
        self.join_fixups.push((pc, join));
        self.push(Instr::BraDiv {
            cond: BranchCond::NonZero(reg),
            target: usize::MAX,
            join: usize::MAX,
        })
    }

    /// Emit a *divergent* branch taken by lanes whose `reg` is zero (see
    /// [`bra_div_nz`](Self::bra_div_nz)).
    pub fn bra_div_z(&mut self, reg: Reg, target: Label, join: Label) -> &mut Self {
        let pc = self.instrs.len();
        self.fixups.push((pc, target));
        self.join_fixups.push((pc, join));
        self.push(Instr::BraDiv {
            cond: BranchCond::Zero(reg),
            target: usize::MAX,
            join: usize::MAX,
        })
    }

    /// Emit an unconditional jump.
    pub fn jmp_to(&mut self, target: Label) -> &mut Self {
        let pc = self.instrs.len();
        self.fixups.push((pc, target));
        self.push(Instr::Jmp { target: usize::MAX })
    }

    /// Emit a DMA transfer from global memory into the scratchpad.
    pub fn dma_load(&mut self, global: Reg, local: Reg, bytes: u64) -> &mut Self {
        self.push(Instr::DmaLoad { global, local, bytes })
    }

    /// Emit a DMA transfer from the scratchpad back to global memory.
    pub fn dma_store(&mut self, global: Reg, local: Reg, bytes: u64) -> &mut Self {
        self.push(Instr::DmaStore { global, local, bytes })
    }

    /// Emit a stash mapping installation.
    pub fn stash_map(&mut self, global: Reg, local: Reg, bytes: u64, writeback: bool) -> &mut Self {
        self.push(Instr::StashMap { global, local, bytes, writeback })
    }

    /// Emit `exit`.
    pub fn exit(&mut self) -> &mut Self {
        self.push(Instr::Exit)
    }

    /// Emit `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Resolve labels and validate the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the program is empty, references an unbound
    /// label, or names a register outside the architectural range.
    pub fn build(mut self) -> Result<Program, BuildError> {
        if self.instrs.is_empty() {
            return Err(BuildError::Empty);
        }
        for (pc, label) in &self.fixups {
            let target = self.bound[label.0].ok_or(BuildError::UnboundLabel(label.0))?;
            match &mut self.instrs[*pc] {
                Instr::Bra { target: t, .. }
                | Instr::Jmp { target: t }
                | Instr::BraDiv { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        for (pc, label) in &self.join_fixups {
            let join = self.bound[label.0].ok_or(BuildError::UnboundLabel(label.0))?;
            match &mut self.instrs[*pc] {
                Instr::BraDiv { join: j, .. } => *j = join,
                other => unreachable!("join fixup on non-divergent-branch {other:?}"),
            }
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            let check = |r: Reg| -> Result<(), BuildError> {
                if (r.0 as usize) < NUM_REGS {
                    Ok(())
                } else {
                    Err(BuildError::RegOutOfRange { pc, reg: r })
                }
            };
            for r in i.sources() {
                check(r)?;
            }
            if let Some(d) = i.dest() {
                check(d)?;
            }
        }
        Ok(Program::from_parts(self.name, self.instrs))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new("t");
        let fwd = b.label();
        let back = b.here();
        b.bra_z(Reg(0), fwd);
        b.jmp_to(back);
        b.bind(fwd);
        b.exit();
        let p = b.build().unwrap();
        match p.fetch(0).unwrap() {
            Instr::Bra { target, .. } => assert_eq!(*target, 2),
            other => panic!("unexpected {other:?}"),
        }
        match p.fetch(1).unwrap() {
            Instr::Jmp { target } => assert_eq!(*target, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.jmp_to(l);
        assert_eq!(b.build(), Err(BuildError::UnboundLabel(0)));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(ProgramBuilder::new("t").build(), Err(BuildError::Empty));
    }

    #[test]
    fn out_of_range_register_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        b.add(Reg(40), Reg(0), Operand::Imm(1));
        match b.build() {
            Err(BuildError::RegOutOfRange { pc: 0, reg }) => assert_eq!(reg, Reg(40)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn rebinding_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn sugar_emits_expected_shapes() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), 7);
        b.mov(Reg(2), Reg(1));
        b.sel(Reg(3), Reg(2), Reg(1), Operand::Imm(0));
        b.atom_cas(Reg(4), Reg(5), Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
        b.bar();
        b.exit();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 6);
        assert!(matches!(
            p.fetch(3).unwrap(),
            Instr::Atom { op: AtomOp::Cas, sem: MemSem::Acquire, .. }
        ));
    }

    #[test]
    fn chaining_works() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(0), 1).addi(Reg(0), Reg(0), 1).exit();
        assert_eq!(b.build().unwrap().len(), 3);
    }

    #[test]
    fn divergent_branch_resolves_both_labels() {
        let mut b = ProgramBuilder::new("t");
        let then_l = b.label();
        let join_l = b.label();
        b.bra_div_nz(Reg(1), then_l, join_l);
        b.nop(); // else
        b.jmp_to(join_l);
        b.bind(then_l);
        b.nop(); // then
        b.bind(join_l);
        b.exit();
        let p = b.build().unwrap();
        match p.fetch(0).unwrap() {
            Instr::BraDiv { target, join, .. } => {
                assert_eq!(*target, 3);
                assert_eq!(*join, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builder_error_display() {
        assert!(BuildError::Empty.to_string().contains("no instructions"));
        assert!(BuildError::UnboundLabel(3).to_string().contains("3"));
    }
}
