//! Randomized test: every representable program round-trips through its
//! textual disassembly. Instruction generation uses a fixed-seed SplitMix64
//! generator (deterministic, no external crates).

use gsi_isa::asm::parse_program;
use gsi_isa::{AluOp, AtomOp, BranchCond, Instr, MemSem, Operand, Program, Reg};

/// Deterministic SplitMix64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

const ALU_OPS: &[AluOp] = &[
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::DivU,
    AluOp::RemU,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::MinU,
    AluOp::MaxU,
    AluOp::SltU,
    AluOp::Seq,
    AluOp::Sne,
];

const ATOM_OPS: &[AtomOp] = &[AtomOp::Cas, AtomOp::Exch, AtomOp::Add, AtomOp::Load, AtomOp::Store];

const SEMS: &[MemSem] = &[MemSem::Relaxed, MemSem::Acquire, MemSem::Release, MemSem::AcqRel];

fn reg(rng: &mut Rng) -> Reg {
    Reg(rng.below(32) as u8)
}

fn operand(rng: &mut Rng) -> Operand {
    if rng.flag() {
        Operand::Reg(reg(rng))
    } else {
        Operand::Imm(rng.next() as i64)
    }
}

fn cond(rng: &mut Rng) -> BranchCond {
    if rng.flag() {
        BranchCond::Zero(reg(rng))
    } else {
        BranchCond::NonZero(reg(rng))
    }
}

fn offset(rng: &mut Rng) -> i64 {
    rng.next() as i32 as i64
}

/// Any instruction; branch targets are drawn from `0..len`.
fn random_instr(rng: &mut Rng, len: usize) -> Instr {
    let len = len as u64;
    match rng.below(17) {
        0 => Instr::Alu {
            op: ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize],
            dst: reg(rng),
            a: operand(rng),
            b: operand(rng),
        },
        1 => Instr::Ldi { dst: reg(rng), imm: rng.next() },
        2 => Instr::Sel { dst: reg(rng), cond: reg(rng), a: operand(rng), b: operand(rng) },
        3 => Instr::LdGlobal { dst: reg(rng), addr: reg(rng), offset: offset(rng) },
        4 => Instr::StGlobal { src: operand(rng), addr: reg(rng), offset: offset(rng) },
        5 => Instr::LdLocal { dst: reg(rng), addr: reg(rng), offset: offset(rng) },
        6 => Instr::StLocal { src: operand(rng), addr: reg(rng), offset: offset(rng) },
        7 => Instr::Atom {
            op: ATOM_OPS[rng.below(ATOM_OPS.len() as u64) as usize],
            dst: reg(rng),
            addr: reg(rng),
            a: operand(rng),
            b: operand(rng),
            sem: SEMS[rng.below(SEMS.len() as u64) as usize],
        },
        8 => Instr::Bar,
        9 => Instr::Bra { cond: cond(rng), target: rng.below(len) as usize },
        10 => Instr::BraDiv {
            cond: cond(rng),
            target: rng.below(len) as usize,
            join: rng.below(len) as usize,
        },
        11 => Instr::Jmp { target: rng.below(len) as usize },
        12 => Instr::DmaLoad { global: reg(rng), local: reg(rng), bytes: (1 + rng.below(63)) * 8 },
        13 => Instr::DmaStore { global: reg(rng), local: reg(rng), bytes: (1 + rng.below(63)) * 8 },
        14 => Instr::StashMap {
            global: reg(rng),
            local: reg(rng),
            bytes: (1 + rng.below(63)) * 8,
            writeback: rng.flag(),
        },
        15 => Instr::Exit,
        _ => Instr::Nop,
    }
}

#[test]
fn every_program_round_trips_through_text() {
    let mut rng = Rng::new(0xA53B_0001);
    for case in 0..128 {
        let len = 1 + rng.below(15) as usize;
        let instrs: Vec<Instr> = (0..len).map(|_| random_instr(&mut rng, len)).collect();
        let p = Program::from_parts_for_tests("roundtrip", instrs);
        let text = p.to_string();
        let q = parse_program(&text)
            .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}\n{text}"));
        assert_eq!(p, q, "case {case}");
    }
}
