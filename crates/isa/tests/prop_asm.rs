//! Property test: every representable program round-trips through its
//! textual disassembly.

use gsi_isa::asm::parse_program;
use gsi_isa::{AluOp, AtomOp, BranchCond, Instr, MemSem, Operand, Program, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        any::<i64>().prop_map(Operand::Imm),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::DivU),
        Just(AluOp::RemU),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::MinU),
        Just(AluOp::MaxU),
        Just(AluOp::SltU),
        Just(AluOp::Seq),
        Just(AluOp::Sne),
    ]
}

fn arb_sem() -> impl Strategy<Value = MemSem> {
    prop_oneof![
        Just(MemSem::Relaxed),
        Just(MemSem::Acquire),
        Just(MemSem::Release),
        Just(MemSem::AcqRel),
    ]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        arb_reg().prop_map(BranchCond::Zero),
        arb_reg().prop_map(BranchCond::NonZero),
    ]
}

/// Any instruction; branch targets drawn from 0..len are patched later.
fn arb_instr(len: usize) -> impl Strategy<Value = Instr> {
    let t = 0..len;
    let t2 = 0..len;
    let t3 = 0..len;
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_operand(), arb_operand())
            .prop_map(|(op, dst, a, b)| Instr::Alu { op, dst, a, b }),
        (arb_reg(), any::<u64>()).prop_map(|(dst, imm)| Instr::Ldi { dst, imm }),
        (arb_reg(), arb_reg(), arb_operand(), arb_operand())
            .prop_map(|(dst, cond, a, b)| Instr::Sel { dst, cond, a, b }),
        (arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(dst, addr, off)| Instr::LdGlobal { dst, addr, offset: off as i64 }),
        (arb_operand(), arb_reg(), any::<i32>())
            .prop_map(|(src, addr, off)| Instr::StGlobal { src, addr, offset: off as i64 }),
        (arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(dst, addr, off)| Instr::LdLocal { dst, addr, offset: off as i64 }),
        (arb_operand(), arb_reg(), any::<i32>())
            .prop_map(|(src, addr, off)| Instr::StLocal { src, addr, offset: off as i64 }),
        (
            prop_oneof![
                Just(AtomOp::Cas),
                Just(AtomOp::Exch),
                Just(AtomOp::Add),
                Just(AtomOp::Load),
                Just(AtomOp::Store)
            ],
            arb_reg(),
            arb_reg(),
            arb_operand(),
            arb_operand(),
            arb_sem()
        )
            .prop_map(|(op, dst, addr, a, b, sem)| Instr::Atom { op, dst, addr, a, b, sem }),
        Just(Instr::Bar),
        (arb_cond(), t).prop_map(|(cond, target)| Instr::Bra { cond, target }),
        (arb_cond(), t2, t3)
            .prop_map(|(cond, target, join)| Instr::BraDiv { cond, target, join }),
        (0..len).prop_map(|target| Instr::Jmp { target }),
        (arb_reg(), arb_reg(), 1u64..64)
            .prop_map(|(global, local, w)| Instr::DmaLoad { global, local, bytes: w * 8 }),
        (arb_reg(), arb_reg(), 1u64..64)
            .prop_map(|(global, local, w)| Instr::DmaStore { global, local, bytes: w * 8 }),
        (arb_reg(), arb_reg(), 1u64..64, any::<bool>()).prop_map(|(global, local, w, wb)| {
            Instr::StashMap { global, local, bytes: w * 8, writeback: wb }
        }),
        Just(Instr::Exit),
        Just(Instr::Nop),
    ]
}

proptest! {
    #[test]
    fn every_program_round_trips_through_text(
        instrs in proptest::collection::vec(arb_instr(16), 1..16),
    ) {
        // Clamp branch targets into range (the strategy drew from 0..16 but
        // the vector may be shorter).
        let len = instrs.len();
        let clamped: Vec<Instr> = instrs
            .into_iter()
            .map(|i| match i {
                Instr::Bra { cond, target } => Instr::Bra { cond, target: target % len },
                Instr::Jmp { target } => Instr::Jmp { target: target % len },
                Instr::BraDiv { cond, target, join } => {
                    Instr::BraDiv { cond, target: target % len, join: join % len }
                }
                other => other,
            })
            .collect();
        let p = Program::from_parts_for_tests("roundtrip", clamped);
        let text = p.to_string();
        let q = parse_program(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(p, q);
    }
}
