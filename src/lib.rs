//! # gsi — GPU Stall Inspector
//!
//! A full reproduction of *"GSI: A GPU Stall Inspector to characterize the
//! sources of memory stalls for tightly coupled GPUs"* (Alsop, ISPASS 2016):
//! a cycle-level integrated CPU-GPU simulator with per-cycle stall
//! attribution, two coherence protocols (conventional GPU coherence and
//! DeNovo), scratchpad / scratchpad+DMA / stash local memories, and the
//! paper's case-study workloads.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the stall taxonomy, Algorithms 1 & 2, attribution ledger,
//!   and figure-style reports (the paper's contribution).
//! * [`noc`] — the 4×4 mesh interconnect.
//! * [`isa`] — the virtual SIMT instruction set and program builder.
//! * [`analyze`] — the static kernel verifier (CFG, dataflow,
//!   barrier-divergence, scratchpad/DMA hazard analysis) gating launches.
//! * [`blame`] — LEO-style stall root-cause attribution: per-instruction
//!   blame tables, ranked reports, and protocol differentials.
//! * [`mem`] — caches, MSHRs, store buffers, coherence, L2, DRAM,
//!   scratchpad, stash, and DMA.
//! * [`sm`] — the streaming-multiprocessor pipeline model.
//! * [`sim`] — the wired system simulator (Table 5.1 configuration).
//! * [`chaos`] — deterministic fault injection (delayed flits, DRAM
//!   jitter, transient MSHR/store-buffer stalls, dropped DMA bursts).
//! * [`serve`] — the persistent simulation service: line-JSON requests,
//!   content-addressed result caching, and whole-machine
//!   checkpoint/resume.
//! * [`trace`] — the cycle-level event tracing / observability layer.
//! * [`workloads`] — UTS, UTSD, and the implicit microbenchmark.
//!
//! ## Quickstart
//!
//! ```
//! use gsi::sim::{Simulator, SystemConfig};
//! use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
//!
//! // Build the paper's system with a single SM (case study 2 setup).
//! let cfg = SystemConfig::paper().with_gpu_cores(1);
//! let mut sim = Simulator::new(cfg);
//! let run = implicit::run(&mut sim, &ImplicitConfig::small(LocalMemStyle::Scratchpad))
//!     .expect("kernel completes");
//! assert!(run.run.breakdown.total_cycles() > 0);
//! ```

pub use gsi_analyze as analyze;
pub use gsi_blame as blame;
pub use gsi_chaos as chaos;
#[doc(inline)]
pub use gsi_core as core;
pub use gsi_isa as isa;
pub use gsi_json as json;
pub use gsi_mem as mem;
pub use gsi_noc as noc;
pub use gsi_serve as serve;
pub use gsi_sim as sim;
pub use gsi_sm as sm;
pub use gsi_trace as trace;
pub use gsi_workloads as workloads;

pub use gsi_core::{MemDataCause, MemStructCause, StallBreakdown, StallKind};
