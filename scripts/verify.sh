#!/usr/bin/env bash
# Full verification gate for the workspace: release build, test suite,
# lint wall (clippy with warnings promoted to errors), and format check.
# Runs offline — the workspace has no external dependencies.
#
#   scripts/verify.sh
#
# Clippy and rustfmt are optional toolchain components; if one is missing
# (minimal containers), its step is skipped with a notice instead of
# failing the whole gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== alloc-free under counter tracing =="
GSI_TRACE_LEVEL=counters cargo test -q --offline --test alloc_free

echo "== engine differential (dense vs event, counters tracing) =="
# The event-driven calendar must be bit-identical to the dense loop on
# every workload, both protocols, chaos seeds included; counters-level
# tracing also compares the recorded event-count vectors.
GSI_TRACE_LEVEL=counters cargo test -q --offline --release --test engine_diff

echo "== perf smoke (event engine vs dense on a memory-bound workload) =="
# Release-only wall-clock assertion: the calendar's wake evaluation must
# not cost more than the dead cycles it skips.
cargo test -q --offline --release --test engine_perf -- --ignored

echo "== perf bench (paper scale, BENCH_PR<n>.json) =="
# Every PR leaves a same-machine baseline so the perf trajectory has no
# holes. The PR number is the successor of the highest recorded in
# CHANGES.md; set GSI_PR to override. Serial (--threads 1) so rows don't
# contend and stay comparable across PRs; best-of-3 (--repeat 3) so a
# noisy neighbor on a shared host can't poison a row.
PR="${GSI_PR:-$(( $(sed -n 's/^- PR \([0-9]*\):.*/\1/p' CHANGES.md | sort -n | tail -1) + 1 ))}"
cargo run --release --offline --quiet -p gsi-bench --bin sweep -- \
    --scale paper --threads 1 --trace-level off --repeat 3 --blame --quiet \
    --out "BENCH_PR${PR}.json"
echo "wrote BENCH_PR${PR}.json"

echo "== serve (cold / cached / checkpoint+resume / clean shutdown) =="
# The service must answer a repeated identical request from the
# content-addressed cache (the result frame carries "cached":true), hand
# back a snapshot digest from a checkpoint request that a resume request
# can replay, and exit 0 on a shutdown request. The smoke client merges
# round-trip latencies into BENCH_PR<n>.json under a "serve" key.
SERVE_DIR=$(mktemp -d /tmp/gsi_serve_verify.XXXXXX)
trap 'rm -rf "$SERVE_DIR"' EXIT
./target/release/gsi-serve --listen 127.0.0.1:0 --cache-dir "$SERVE_DIR/cache" \
    > "$SERVE_DIR/server.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^LISTENING //p' "$SERVE_DIR/server.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve: server never reported LISTENING" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
./target/release/serve-client --addr "$ADDR" --timing --bench "BENCH_PR${PR}.json" \
    --request '{"id":1,"op":"simulate","workload":"spmv"}' \
    --request '{"id":2,"op":"simulate","workload":"spmv"}' \
    --request '{"id":3,"op":"checkpoint","workload":"reduction","at_cycle":500}' \
    --request '{"id":6,"op":"analyze","workload":"spmv","protocol":"denovo"}' \
    --request '{"id":7,"op":"analyze","workload":"spmv","protocol":"denovo"}' \
    > "$SERVE_DIR/client.log"
grep '"id":1' "$SERVE_DIR/client.log" | grep -q '"cached":false' \
    || { echo "serve: cold request unexpectedly cached" >&2; exit 1; }
grep '"id":2' "$SERVE_DIR/client.log" | grep -q '"cached":true' \
    || { echo "serve: repeated request missed the cache" >&2; exit 1; }
# The analyze op (race verifier included) answers over the wire and its
# report participates in the content-addressed cache like any result.
grep '"id":6' "$SERVE_DIR/client.log" | grep -q '"analysis"' \
    || { echo "serve: analyze op returned no analysis report" >&2; exit 1; }
grep '"id":6' "$SERVE_DIR/client.log" | grep -q '"cached":false' \
    || { echo "serve: cold analyze unexpectedly cached" >&2; exit 1; }
grep '"id":7' "$SERVE_DIR/client.log" | grep -q '"cached":true' \
    || { echo "serve: repeated analyze missed the cache" >&2; exit 1; }
SNAP=$(sed -n 's/.*"snapshot":"\([0-9a-f]\{32\}\)".*/\1/p' "$SERVE_DIR/client.log" | head -n 1)
if [ -z "$SNAP" ]; then
    echo "serve: checkpoint returned no snapshot digest" >&2
    exit 1
fi
./target/release/serve-client --addr "$ADDR" --timing --bench "BENCH_PR${PR}.json" \
    --request "{\"id\":4,\"op\":\"resume\",\"workload\":\"reduction\",\"snapshot\":\"$SNAP\"}" \
    --request '{"id":5,"op":"shutdown"}' \
    >> "$SERVE_DIR/client.log"
grep '"id":4' "$SERVE_DIR/client.log" | grep -q '"resumed_from_cycle":500' \
    || { echo "serve: resume did not restart from the checkpoint cycle" >&2; exit 1; }
wait "$SERVE_PID" \
    || { echo "serve: server exited non-zero after shutdown" >&2; exit 1; }
rm -rf "$SERVE_DIR"
trap - EXIT
echo "serve: cold, cached, checkpoint/resume, shutdown all OK"

echo "== shard (chaos sweep, supervisor SIGKILL midway, resume, byte-identical) =="
# The sharded sweep driver must survive everything at once: workers
# randomly SIGKILLed (--chaos-kill, pinned seed), the supervisor itself
# SIGKILLed mid-sweep, then a --resume that replays the fsync'd journal.
# The recovered figures and rows must be byte-identical to a clean,
# failure-free run of the same plan, with no unit merged twice. The
# deterministic rows also land in BENCH_PR<n>.json under "shard".
SHARD_DIR=$(mktemp -d /tmp/gsi_shard_verify.XXXXXX)
trap 'rm -rf "$SHARD_DIR"' EXIT
./target/release/gsi-shard --plan scripts/shard_plan_small.json \
    --out "$SHARD_DIR/clean" --workers 2 --quiet
./target/release/gsi-shard --plan scripts/shard_plan_small.json \
    --out "$SHARD_DIR/chaos" --workers 1 --chaos-kill 0.3 --chaos-seed 20260808 \
    --quiet &
SHARD_PID=$!
# Kill the supervisor once at least one outcome is journaled (header +
# one unit record); best-effort — a very fast sweep may finish first,
# in which case the resume below exercises the complete-journal path.
for _ in $(seq 1 200); do
    LINES=$(wc -l 2>/dev/null < "$SHARD_DIR/chaos/journal.jsonl" || echo 0)
    [ "$LINES" -ge 2 ] && break
    sleep 0.05
done
kill -9 "$SHARD_PID" 2>/dev/null || true
wait "$SHARD_PID" 2>/dev/null || true
./target/release/gsi-shard --plan scripts/shard_plan_small.json \
    --out "$SHARD_DIR/chaos" --resume --workers 2 --chaos-kill 0.3 \
    --chaos-seed 20260808 --quiet --bench "BENCH_PR${PR}.json"
cmp "$SHARD_DIR/clean/figures.txt" "$SHARD_DIR/chaos/figures.txt" \
    || { echo "shard: resumed figures differ from the clean run" >&2; exit 1; }
cmp "$SHARD_DIR/clean/rows.json" "$SHARD_DIR/chaos/rows.json" \
    || { echo "shard: resumed rows differ from the clean run" >&2; exit 1; }
DUPES=$(grep -o '"unit": [0-9]*' "$SHARD_DIR/chaos/rows.json" | sort | uniq -d)
[ -z "$DUPES" ] \
    || { echo "shard: units merged twice: $DUPES" >&2; exit 1; }
grep -q '"status": "complete"' "$SHARD_DIR/chaos/manifest.json" \
    || { echo "shard: manifest not complete after resume" >&2; exit 1; }
rm -rf "$SHARD_DIR"
trap - EXIT
echo "shard: chaos + supervisor kill + resume byte-identical to clean run"

echo "== blame attribution (export + schema + conservation) =="
# Two memory-bound workloads export a blame report each; blame-check
# validates the schema and asserts the ranked shares sum to 100%.
for w in spmv bfs; do
    cargo run --release --offline --quiet -p gsi-bench --bin gsi-run -- \
        --workload "$w" --blame --quiet --blame-out "/tmp/gsi_blame_${w}.json"
    cargo run --release --offline --quiet -p gsi-bench --bin blame-check -- \
        "/tmp/gsi_blame_${w}.json"
    rm -f "/tmp/gsi_blame_${w}.json"
done

echo "== chaos sweep (fixed seed, zero escaped panics, conservation on) =="
# Every experiment runs under all fault kinds; any panic, simulation
# failure, or conservation violation fails the sweep (non-zero exit).
GSI_CHAOS_SEED=20260805 cargo run --release --offline --quiet -p gsi-bench --bin sweep -- \
    --scale small --quiet --out /tmp/gsi_chaos_verify.json
rm -f /tmp/gsi_chaos_verify.json

echo "== static analysis (all workloads, both protocols, race gate on) =="
# The deny gate must never refuse a legitimate launch: every in-tree
# workload — including the whole-scenario race verifier — analyzes with
# zero error-severity findings (exit 1 otherwise) under both coherence
# protocols, with no baseline needed.
cargo run --release --offline --quiet -p gsi-bench --bin analyze -- --all --quiet
cargo run --release --offline --quiet -p gsi-bench --bin analyze -- \
    --all --quiet --protocol denovo
cargo run --release --offline --quiet -p gsi-bench --bin analyze -- \
    --all --quiet --protocol denovo --scale paper

echo "== DRF gate + baseline round-trip (racy kernel denied, then admitted) =="
# A deliberately racy kernel must be denied under DeNovo (exit 1), a
# --write-baseline of its findings must admit it (exit 0), and disabling
# the race pass must drop exactly the race findings.
RACE_DIR=$(mktemp -d /tmp/gsi_race_verify.XXXXXX)
trap 'rm -rf "$RACE_DIR"' EXIT
printf '.kernel racy\n0: ldi r1, 1048576\n1: st.g [r1+0], 1\n2: exit\n' \
    > "$RACE_DIR/racy.gsi"
if ./target/release/analyze --workload custom --asm "$RACE_DIR/racy.gsi" \
    --blocks 2 --warps 2 --protocol denovo --quiet \
    --write-baseline "$RACE_DIR/baseline.json"; then
    echo "race gate: racy kernel passed the DeNovo gate" >&2; exit 1
fi
./target/release/analyze --workload custom --asm "$RACE_DIR/racy.gsi" \
    --blocks 2 --warps 2 --protocol denovo --quiet \
    --baseline "$RACE_DIR/baseline.json" \
    || { echo "race gate: baseline did not admit the racy kernel" >&2; exit 1; }
./target/release/analyze --workload custom --asm "$RACE_DIR/racy.gsi" \
    --blocks 2 --warps 2 --protocol denovo --quiet --no-races \
    || { echo "race gate: --no-races still denied the kernel" >&2; exit 1; }
rm -rf "$RACE_DIR"
trap - EXIT
echo "race gate: deny / baseline-admit / --no-races all OK"

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy (-D warnings) =="
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "== cargo clippy: not installed, skipping =="
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --check
else
    echo "== cargo fmt: not installed, skipping =="
fi

echo "verify: OK"
