#!/usr/bin/env bash
# Full verification gate for the workspace: release build, test suite,
# lint wall (clippy with warnings promoted to errors), and format check.
# Runs offline — the workspace has no external dependencies.
#
#   scripts/verify.sh
#
# Clippy and rustfmt are optional toolchain components; if one is missing
# (minimal containers), its step is skipped with a notice instead of
# failing the whole gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== alloc-free under counter tracing =="
GSI_TRACE_LEVEL=counters cargo test -q --offline --test alloc_free

echo "== engine differential (dense vs event, counters tracing) =="
# The event-driven calendar must be bit-identical to the dense loop on
# every workload, both protocols, chaos seeds included; counters-level
# tracing also compares the recorded event-count vectors.
GSI_TRACE_LEVEL=counters cargo test -q --offline --release --test engine_diff

echo "== perf smoke (event engine vs dense on a memory-bound workload) =="
# Release-only wall-clock assertion: the calendar's wake evaluation must
# not cost more than the dead cycles it skips.
cargo test -q --offline --release --test engine_perf -- --ignored

echo "== perf bench (paper scale, BENCH_PR<n>.json) =="
# Every PR leaves a same-machine baseline so the perf trajectory has no
# holes. The PR number is the successor of the highest recorded in
# CHANGES.md; set GSI_PR to override. Serial (--threads 1) so rows don't
# contend and stay comparable across PRs; best-of-3 (--repeat 3) so a
# noisy neighbor on a shared host can't poison a row.
PR="${GSI_PR:-$(( $(sed -n 's/^- PR \([0-9]*\):.*/\1/p' CHANGES.md | sort -n | tail -1) + 1 ))}"
cargo run --release --offline --quiet -p gsi-bench --bin sweep -- \
    --scale paper --threads 1 --trace-level off --repeat 3 --blame --quiet \
    --out "BENCH_PR${PR}.json"
echo "wrote BENCH_PR${PR}.json"

echo "== blame attribution (export + schema + conservation) =="
# Two memory-bound workloads export a blame report each; blame-check
# validates the schema and asserts the ranked shares sum to 100%.
for w in spmv bfs; do
    cargo run --release --offline --quiet -p gsi-bench --bin gsi-run -- \
        --workload "$w" --blame --quiet --blame-out "/tmp/gsi_blame_${w}.json"
    cargo run --release --offline --quiet -p gsi-bench --bin blame-check -- \
        "/tmp/gsi_blame_${w}.json"
    rm -f "/tmp/gsi_blame_${w}.json"
done

echo "== chaos sweep (fixed seed, zero escaped panics, conservation on) =="
# Every experiment runs under all fault kinds; any panic, simulation
# failure, or conservation violation fails the sweep (non-zero exit).
GSI_CHAOS_SEED=20260805 cargo run --release --offline --quiet -p gsi-bench --bin sweep -- \
    --scale small --quiet --out /tmp/gsi_chaos_verify.json
rm -f /tmp/gsi_chaos_verify.json

echo "== static analysis (all workloads, both protocols, zero errors) =="
# The deny gate must never refuse a legitimate launch: every in-tree
# workload analyzes clean (exit 1 on any error-severity finding).
cargo run --release --offline --quiet -p gsi-bench --bin analyze -- --all --quiet
cargo run --release --offline --quiet -p gsi-bench --bin analyze -- \
    --all --quiet --protocol denovo --scale paper

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy (-D warnings) =="
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "== cargo clippy: not installed, skipping =="
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --check
else
    echo "== cargo fmt: not installed, skipping =="
fi

echo "verify: OK"
