//! Run every workload in the suite and print its GSI breakdown side by
//! side — a tour of how different program shapes light up different stall
//! classes.
//!
//! ```text
//! cargo run --release --example workload_tour
//! ```

use gsi::core::report::{Figure, Panel};
use gsi::sim::{Simulator, SystemConfig};
use gsi::workloads::{bfs, gemm, histogram, implicit, reduction, spmv, stencil, uts};

fn main() {
    let mut fig = Figure::new("stall breakdowns across the workload suite (per-workload scale)");

    // UTS / UTSD (4 SMs).
    let ucfg = uts::UtsConfig::small();
    for (name, variant) in
        [("UTS", uts::Variant::Centralized), ("UTSD", uts::Variant::Decentralized)]
    {
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = uts::run(&mut sim, &ucfg, variant).expect("completes");
        fig.push(name, out.run.breakdown);
    }

    // Implicit (1 SM, scratchpad).
    {
        let style = implicit::LocalMemStyle::Scratchpad;
        let cfg = implicit::ImplicitConfig::small(style);
        let mut sim = Simulator::new(
            SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind()),
        );
        let out = implicit::run(&mut sim, &cfg).expect("completes");
        fig.push("implicit", out.run.breakdown);
    }

    // SpMV (4 SMs): irregular gathers.
    {
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = spmv::run(&mut sim, &spmv::SpmvConfig::small()).expect("completes");
        fig.push("spmv", out.run.breakdown);
    }

    // Histogram (4 SMs): atomics.
    {
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out =
            histogram::run(&mut sim, &histogram::HistogramConfig::small()).expect("completes");
        fig.push("histogram", out.run.breakdown);
    }

    // Stencil, tiled and global (2 SMs).
    for variant in [stencil::StencilVariant::Tiled, stencil::StencilVariant::Global] {
        let cfg = stencil::StencilConfig::small(variant);
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
        let out = stencil::run(&mut sim, &cfg).expect("completes");
        let name = match variant {
            stencil::StencilVariant::Tiled => "stencil-tiled",
            stencil::StencilVariant::Global => "stencil-global",
        };
        fig.push(name, out.run.breakdown);
    }

    // BFS (4 SMs): irregular traversal, summed over its levels.
    {
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = bfs::run(&mut sim, &bfs::BfsConfig::small()).expect("completes");
        let total: gsi::StallBreakdown = out.levels.iter().map(|r| &r.breakdown).sum();
        fig.push("bfs", total);
    }

    // GEMM, tiled (4 SMs): scratchpad reuse.
    {
        let cfg = gemm::GemmConfig::small(gemm::GemmVariant::Tiled);
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out = gemm::run(&mut sim, &cfg).expect("completes");
        fig.push("gemm-tiled", out.run.breakdown);
    }

    // Reduction (4 SMs): barriers.
    {
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
        let out =
            reduction::run(&mut sim, &reduction::ReductionConfig::small()).expect("completes");
        fig.push("reduction", out.run.breakdown);
    }

    // Composition view: each bar normalized to its own total, because the
    // workloads differ in absolute length by 20x.
    println!("{}", fig.render_fractions(Panel::Execution, 60));
    println!(
        "Reading the mix: UTS is synchronization-bound (s); UTSD trades most of\n\
         that for memory-data stalls (d); spmv's irregular gather is almost\n\
         pure memory-data; implicit splits between issue (#) and MSHR\n\
         pressure (m); histogram keeps issuing (#) around its in-flight\n\
         atomics (d); the tiled stencil spends a visibly larger share\n\
         issuing (#) than the global variant, whose reads all pay the\n\
         hierarchy; reduction is the most compute-shaped bar of the suite."
    );
}
