//! Quickstart: write a tiny kernel, run it on the paper's system, and read
//! the GSI stall breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gsi::core::report::{Figure, Panel};
use gsi::isa::{Operand, ProgramBuilder, Reg};
use gsi::sim::{LaunchSpec, Simulator, SystemConfig};

fn main() {
    // A kernel with a deliberate load-use dependency: each thread loads a
    // word, increments it, and stores it back.
    let mut b = ProgramBuilder::new("increment");
    b.shl(Reg(2), Reg(0), Operand::Imm(3)); // r2 = tid * 8
    b.add(Reg(2), Reg(2), Reg(1)); // r2 += array base
    b.ld_global(Reg(3), Reg(2), 0); // r3 = mem[r2]
    b.addi(Reg(3), Reg(3), 1); // depends on the load: stalls here
    b.st_global(Reg(3), Reg(2), 0);
    b.exit();
    let program = b.build().expect("assembles");

    // The paper's 15-SM system (Table 5.1).
    let mut sim = Simulator::new(SystemConfig::paper());

    // 64 blocks of 2 warps; r0 = flat thread id, r1 = array base.
    const BASE: u64 = 0x10_0000;
    let spec = LaunchSpec::new(program, 64, 2).with_init(|w, block, warp, _ctx| {
        w.set_per_lane(0, move |lane| {
            block * 64 + warp as u64 * 32 + lane as u64 // flat element id
        });
        w.set_uniform(1, BASE);
    });

    // Initialize the array.
    for i in 0..64 * 64u64 {
        sim.gmem_mut().write_word(BASE + i * 8, i);
    }

    let run = sim.run_kernel(&spec).expect("kernel completes");

    // Verify the result, then show what GSI saw.
    for i in 0..64 * 64u64 {
        assert_eq!(sim.gmem().read_word(BASE + i * 8), i + 1);
    }

    println!("kernel ran {} cycles, issued {} instructions\n", run.cycles, run.instructions);
    let fig = Figure::new("quickstart: execution time breakdown")
        .with_entry("increment", run.breakdown.clone());
    println!("{}", fig.render(Panel::Execution, 60));
    println!("{}", fig.render(Panel::MemData, 60));
    println!(
        "memory data stalls: {} cycles ({:.1}% of execution)",
        run.breakdown.cycles(gsi::StallKind::MemoryData),
        run.breakdown.fraction(gsi::StallKind::MemoryData) * 100.0
    );
}
