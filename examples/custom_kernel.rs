//! Using GSI to diagnose a kernel of your own: two variants of a strided
//! reduction, one with severe scratchpad bank conflicts and one without.
//! The stall breakdown pinpoints the difference — exactly the kind of
//! "why is variant A slower" question the paper built GSI to answer.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use gsi::core::report::{Figure, Panel};
use gsi::core::MemStructCause;
use gsi::isa::{Operand, ProgramBuilder, Reg};
use gsi::mem::LocalMemKind;
use gsi::sim::{LaunchSpec, Simulator, SystemConfig};

/// Build a kernel where each thread hammers a scratchpad word. With
/// `stride` equal to the bank count (32), every lane of a warp maps to the
/// same bank and the LSU serializes; with `stride == 1` accesses spread
/// across all banks.
fn kernel(stride: u64, rounds: u64) -> gsi::isa::Program {
    let mut b = ProgramBuilder::new(if stride == 1 { "coalesced" } else { "conflicted" });
    // r0 = tid (per lane); local addr = (tid * stride * 8) % scratch size
    b.mul(Reg(2), Reg(0), Operand::Imm(stride as i64 * 8));
    b.and(Reg(2), Reg(2), Operand::Imm(16 * 1024 - 1));
    b.ldi(Reg(3), rounds);
    let top = b.here();
    b.ld_local(Reg(4), Reg(2), 0);
    b.addi(Reg(4), Reg(4), 1);
    b.st_local(Reg(4), Reg(2), 0);
    b.subi(Reg(3), Reg(3), 1);
    b.bra_nz(Reg(3), top);
    b.exit();
    b.build().expect("assembles")
}

fn run(stride: u64) -> gsi::StallBreakdown {
    let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(LocalMemKind::Scratchpad);
    let mut sim = Simulator::new(sys);
    let spec = LaunchSpec::new(kernel(stride, 64), 4, 4).with_init(|w, _block, warp, _ctx| {
        w.set_per_lane(0, move |lane| (warp * 32 + lane) as u64);
    });
    let run = sim.run_kernel(&spec).expect("kernel completes");
    println!(
        "stride {stride:>2}: {:>7} cycles, bank-conflict stalls: {:>6}",
        run.cycles,
        run.breakdown.mem_struct_cycles(MemStructCause::BankConflict)
    );
    run.breakdown
}

fn main() {
    println!("strided scratchpad update, 1 SM, 16 warps, 64 rounds\n");
    let good = run(1);
    let bad = run(32);
    let fig = Figure::new("\nmemory structural stall breakdown (normalized to stride 32)")
        .with_entry("stride 32", bad)
        .with_entry("stride 1", good);
    println!("{}", fig.render(Panel::MemStruct, 60));
    println!(
        "The breakdown attributes the slowdown to bank conflicts specifically,\n\
         not to MSHR pressure or DRAM latency — no guesswork required."
    );
}
