//! Branch divergence under the GSI lens. The paper's taxonomy says: "If
//! control stalls dominate, there is significant divergence in the kernel
//! code" — and its conclusion suggests re-prioritizing Algorithm 2 around
//! control stalls when studying divergence. This example does both: it runs
//! the same loop with uniform and divergent branching, and classifies the
//! divergent run under the memory-focused and control-focused priorities.
//!
//! ```text
//! cargo run --release --example divergence
//! ```

use gsi::core::{CyclePriority, StallKind};
use gsi::isa::{Operand, ProgramBuilder, Reg};
use gsi::sim::{LaunchSpec, Simulator, SystemConfig};

/// A loop whose body branches per lane: lanes below `split` take one side.
/// `split == 0` keeps the warp uniform; `split == 16` divides it in half.
fn kernel(split: u64, rounds: u64) -> gsi::isa::Program {
    let mut b = ProgramBuilder::new("divergence");
    // r0 = lane id (preset); r1 = accumulator; r3 = loop counter
    b.ldi(Reg(3), rounds);
    b.sltu(Reg(4), Reg(0), Operand::Imm(split as i64));
    let top = b.here();
    let then_l = b.label();
    let join_l = b.label();
    b.bra_div_nz(Reg(4), then_l, join_l);
    // else side: three ALU ops
    b.addi(Reg(1), Reg(1), 3);
    b.xor(Reg(1), Reg(1), Reg(0));
    b.shl(Reg(5), Reg(1), Operand::Imm(1));
    b.jmp_to(join_l);
    b.bind(then_l);
    // then side: three different ALU ops
    b.addi(Reg(1), Reg(1), 5);
    b.and(Reg(1), Reg(1), Operand::Imm(0xFFFF));
    b.shr(Reg(5), Reg(1), Operand::Imm(1));
    b.bind(join_l);
    b.subi(Reg(3), Reg(3), 1);
    b.bra_nz(Reg(3), top);
    b.exit();
    b.build().expect("assembles")
}

fn run(split: u64, priority: CyclePriority) -> (u64, gsi::StallBreakdown) {
    let sys = SystemConfig::paper().with_gpu_cores(1).with_cycle_priority(priority);
    let mut sim = Simulator::new(sys);
    let spec = LaunchSpec::new(kernel(split, 64), 2, 4)
        .with_init(|w, _, _, _| w.set_per_lane(0, |lane| lane as u64));
    let r = sim.run_kernel(&spec).expect("kernel completes");
    (r.cycles, r.breakdown)
}

fn main() {
    println!("64-round loop, 8 warps, one SM\n");
    for (name, split) in [("uniform (split=0)", 0u64), ("divergent (split=16)", 16)] {
        let (cycles, b) = run(split, CyclePriority::memory_focused());
        println!(
            "{name:>22}: {cycles:>6} cycles | control stalls {:>5} ({:.1}%)",
            b.cycles(StallKind::Control),
            b.fraction(StallKind::Control) * 100.0
        );
    }
    println!("\nSame divergent run, classified under different Algorithm-2 priorities:");
    for (name, p) in [
        ("memory-focused (paper default)", CyclePriority::memory_focused()),
        ("control-focused", CyclePriority::control_focused()),
    ] {
        let (_, b) = run(16, p);
        println!(
            "{name:>32}: control {:>5}  comp-data {:>5}  mem-data {:>5}",
            b.cycles(StallKind::Control),
            b.cycles(StallKind::ComputeData),
            b.cycles(StallKind::MemoryData),
        );
    }
    println!(
        "\nDivergence serializes the two sides and pays a refetch on every\n\
         switch, which GSI books as control stalls; a control-focused\n\
         priority surfaces even the cycles where control shares the blame."
    );
}
