//! An Aerialvision-style timeline: watch a kernel's *phases* by rendering
//! the dominant stall category of every epoch. The implicit microbenchmark
//! has three clearly visible phases — copy-in (memory bound), compute, and
//! copy-out — and UTS shows its lock-convoy behaviour.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use gsi::core::report::render_timeline;
use gsi::sim::{Simulator, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi::workloads::uts::{self, UtsConfig, Variant};

fn main() {
    println!("one glyph per 64-cycle epoch; dominant stall per epoch");
    println!("legend: #=no-stall .=idle c=control s=sync d=mem-data m=mem-struct\n");

    // The implicit microbenchmark on one SM.
    for style in LocalMemStyle::ALL {
        let cfg = ImplicitConfig::small(style);
        let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
        let mut sim = Simulator::new(sys);
        sim.set_timeline_epoch(64);
        let out = implicit::run(&mut sim, &cfg).expect("completes");
        println!("{style:>14} |{}|", render_timeline(&out.run.timelines[0]));
    }

    // UTS vs UTSD on one of four SMs: the synchronization convoy vs the
    // decentralized version.
    println!();
    for variant in [Variant::Centralized, Variant::Decentralized] {
        let cfg = UtsConfig::small();
        let sys = SystemConfig::paper().with_gpu_cores(4);
        let mut sim = Simulator::new(sys);
        sim.set_timeline_epoch(256);
        let out = uts::run(&mut sim, &cfg, variant).expect("completes");
        let name = match variant {
            Variant::Centralized => "UTS (SM0)",
            Variant::Decentralized => "UTSD (SM0)",
        };
        println!(
            "{name:>14} |{}| ({} cycles)",
            render_timeline(&out.run.timelines[0]),
            out.run.cycles
        );
    }
}
