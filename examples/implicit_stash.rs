//! Case study 2 of the paper: baseline scratchpad vs scratchpad+DMA vs
//! stash on the implicit microbenchmark (one SM).
//!
//! ```text
//! cargo run --release --example implicit_stash [-- small]
//! ```

use gsi::core::report::Figure;
use gsi::core::{MemStructCause, StallKind};
use gsi::sim::{Simulator, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};

fn main() {
    let small = std::env::args().any(|a| a == "small");
    let mut fig =
        Figure::new("implicit: stall cycle breakdowns (normalized to baseline scratchpad)");
    for style in LocalMemStyle::ALL {
        let cfg = if small { ImplicitConfig::small(style) } else { ImplicitConfig::paper(style) };
        let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
        let mut sim = Simulator::new(sys);
        let out = implicit::run(&mut sim, &cfg).expect("microbenchmark completes");
        let b = &out.run.breakdown;
        println!(
            "{style:14}: {:>8} cycles, {:>7} instructions | no-stall {:4.1}%, \
             MSHR-full {:4.1}%, pending-DMA {:4.1}%",
            out.run.cycles,
            out.run.instructions,
            b.fraction(StallKind::NoStall) * 100.0,
            b.mem_struct_cycles(MemStructCause::MshrFull) as f64 / b.total_cycles() as f64 * 100.0,
            b.mem_struct_cycles(MemStructCause::PendingDma) as f64 / b.total_cycles() as f64
                * 100.0,
        );
        fig.push(style.to_string(), out.run.breakdown);
    }
    println!("\n{}", fig.render_all(60));
    println!(
        "Both DMA and stash eliminate the explicit copy instructions; the saved\n\
         no-stall cycles are partly offset by memory structural stalls (full\n\
         MSHR, pending DMA) from the higher memory request rate — the paper's\n\
         Figure 6.3 observation."
    );
}
