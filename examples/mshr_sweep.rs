//! The paper's Figure 6.4: sweep the MSHR size (scaling the store buffer
//! with it) for every local-memory organization and watch the bottleneck
//! move.
//!
//! ```text
//! cargo run --release --example mshr_sweep [-- small]
//! ```

use gsi::core::{MemDataCause, MemStructCause};
use gsi::sim::{Simulator, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};

fn main() {
    let small = std::env::args().any(|a| a == "small");
    let sizes: &[usize] = if small { &[8, 32] } else { &[32, 64, 128, 256] };

    println!(
        "{:>14} {:>6} {:>10} {:>12} {:>12} {:>12}",
        "config", "MSHR", "cycles", "MSHR-full", "pend-DMA", "mem-data(mem)"
    );
    for style in LocalMemStyle::ALL {
        for &mshr in sizes {
            let cfg =
                if small { ImplicitConfig::small(style) } else { ImplicitConfig::paper(style) };
            let sys = SystemConfig::paper()
                .with_gpu_cores(1)
                .with_local_mem(style.mem_kind())
                .with_mshr(mshr);
            let mut sim = Simulator::new(sys);
            let out = implicit::run(&mut sim, &cfg).expect("microbenchmark completes");
            let b = &out.run.breakdown;
            println!(
                "{:>14} {:>6} {:>10} {:>12} {:>12} {:>12}",
                style.to_string(),
                mshr,
                out.run.cycles,
                b.mem_struct_cycles(MemStructCause::MshrFull),
                b.mem_struct_cycles(MemStructCause::PendingDma),
                b.mem_data_cycles(MemDataCause::MainMemory),
            );
        }
        println!();
    }
    println!(
        "Growing the MSHR drains the full-MSHR stalls for every organization,\n\
         but the freed time reappears elsewhere: as memory data stalls for the\n\
         scratchpad and stash (loads complete later than their uses), and as\n\
         pending-DMA stalls for scratchpad+DMA (the engine runs further ahead\n\
         of the compute phase) — the bottleneck migration of Figure 6.4."
    );
}
