//! Case study 1 of the paper: DeNovo vs GPU coherence on unbalanced tree
//! search, before (UTS) and after (UTSD) decentralizing the task queue.
//!
//! ```text
//! cargo run --release --example uts_denovo [-- small]
//! ```

use gsi::core::report::Figure;
use gsi::core::StallKind;
use gsi::mem::Protocol;
use gsi::sim::{Simulator, SystemConfig};
use gsi::workloads::uts::{self, UtsConfig, Variant};

fn main() {
    let small = std::env::args().any(|a| a == "small");
    let cfg = if small { UtsConfig::small() } else { UtsConfig::paper() };
    let cores = if small { 4 } else { 15 };

    let mut cycles = std::collections::BTreeMap::new();
    for variant in [Variant::Centralized, Variant::Decentralized] {
        let name = match variant {
            Variant::Centralized => "UTS",
            Variant::Decentralized => "UTSD",
        };
        let mut fig =
            Figure::new(format!("{name}: stall cycle breakdowns (normalized to GPU coherence)"));
        for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
            let sys = SystemConfig::paper().with_gpu_cores(cores).with_protocol(protocol);
            let mut sim = Simulator::new(sys);
            let out = uts::run(&mut sim, &cfg, variant).expect("tree search completes");
            println!(
                "{name:5} {protocol:14}: {:>9} cycles, {:>8} nodes processed, \
                 sync {:4.1}%, mem-data {:4.1}%, mem-struct {:4.1}%",
                out.run.cycles,
                out.processed,
                out.run.breakdown.fraction(StallKind::Synchronization) * 100.0,
                out.run.breakdown.fraction(StallKind::MemoryData) * 100.0,
                out.run.breakdown.fraction(StallKind::MemoryStructural) * 100.0,
            );
            cycles.insert((name, protocol.to_string()), out.run.cycles);
            fig.push(protocol.to_string(), out.run.breakdown);
        }
        println!("\n{}", fig.render_all(60));
    }

    // The headline the paper reports: decentralizing the queue removes the
    // synchronization bottleneck for both protocols.
    for protocol in ["GPU coherence", "DeNovo"] {
        let uts = cycles[&("UTS", protocol.to_string())];
        let utsd = cycles[&("UTSD", protocol.to_string())];
        println!(
            "UTSD reduces execution time by {:.0}% relative to UTS under {protocol}",
            (1.0 - utsd as f64 / uts as f64) * 100.0
        );
    }
}
